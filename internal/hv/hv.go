// Package hv models the Xen hypervisor as seen by the control plane:
// domain lifecycle, guest memory, vCPUs, event channels, grant tables
// and — for LightVM's noxs — the per-domain device page (§5.1).
//
// Every entry point that would be a hypercall on real Xen charges
// costs.Hypercall (plus operation-specific work) to the virtual clock,
// so toolstack implementations built on top automatically account for
// their privilege crossings.
package hv

import (
	"errors"
	"fmt"
	"sort"

	"lightvm/internal/costs"
	"lightvm/internal/mm"
	"lightvm/internal/sim"
)

// DomID identifies a domain. Dom0 is 0.
type DomID int

// State is a domain lifecycle state.
type State int

// Domain lifecycle states, mirroring Xen's.
const (
	StateCreated State = iota // shell exists, nothing loaded
	StatePaused               // built but not scheduled
	StateRunning
	StateSuspended
	StateShutdown
	StateDying
)

var stateNames = [...]string{"created", "paused", "running", "suspended", "shutdown", "dying"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Errors returned by hypercalls.
var (
	ErrNoSuchDomain  = errors.New("hv: no such domain")
	ErrBadState      = errors.New("hv: operation invalid in current domain state")
	ErrNoSuchPort    = errors.New("hv: no such event channel port")
	ErrNoSuchGrant   = errors.New("hv: no such grant reference")
	ErrDevPageFull   = errors.New("hv: device page full")
	ErrNotPrivileged = errors.New("hv: caller not privileged for this hypercall")
)

// VCPU is a virtual CPU bound to a physical core.
type VCPU struct {
	ID   int
	Core int // physical core this vCPU is pinned to
}

// Domain is the hypervisor's view of a guest.
type Domain struct {
	ID       DomID
	State    State
	VCPUs    []VCPU
	MaxMem   uint64 // bytes
	Mem      []mm.Extent
	MemBytes uint64

	// Kernel image descriptor: the bytes are charged, not copied, so
	// density experiments with 1.1 GB Debian images stay tractable.
	KernelSize  uint64
	KernelName  string
	KernelEntry uint64 // fake entry point, set by image build

	// DevPage is the noxs device page (nil until created).
	DevPage *DevicePage

	// SharedBytes counts memory mapped from the dedup share pool
	// (counted once host-wide); SharedKeys are the regions to release
	// on destroy.
	SharedBytes uint64
	SharedKeys  []string

	// ShutdownReason is set when the guest shuts down or suspends.
	ShutdownReason string

	CreatedAt sim.Time
	BootedAt  sim.Time
}

// Config describes a domain to create.
type Config struct {
	MaxMem uint64 // bytes
	VCPUs  int
	Cores  []int // physical cores to pin vCPUs to, round-robin
}

// Counters aggregates hypervisor activity for tests and breakdowns.
type Counters struct {
	Hypercalls   uint64
	EvtchnSends  uint64
	GrantMaps    uint64
	DomainsMade  uint64
	DomainsGone  uint64
	DevPageReads uint64
}

// Hypervisor is the machine-wide monitor.
type Hypervisor struct {
	Clock *sim.Clock
	Mem   *mm.Allocator
	// Share is the content-keyed page-sharing pool backing the §9
	// memory-deduplication extension.
	Share *mm.SharePool

	domains map[DomID]*Domain
	nextID  DomID

	ports     map[Port]*channel
	nextPort  Port
	grants    map[GrantRef]*grant
	nextGrant GrantRef

	Count Counters
}

// New creates a hypervisor managing hostMemBytes of RAM on clock.
// Dom0's base memory is reserved immediately.
func New(clock *sim.Clock, hostMemBytes uint64) *Hypervisor {
	h := &Hypervisor{
		Clock:   clock,
		Mem:     mm.New(hostMemBytes),
		domains: make(map[DomID]*Domain),
		nextID:  1,
		ports:   make(map[Port]*channel),
		grants:  make(map[GrantRef]*grant),
	}
	h.Share = mm.NewSharePool(h.Mem)
	dom0 := &Domain{ID: 0, State: StateRunning, CreatedAt: clock.Now()}
	dom0Bytes := uint64(costs.Dom0BaseMB * 1024 * 1024)
	exts, err := h.Mem.AllocBytes(dom0Bytes, mm.Owner(0))
	if err != nil {
		panic("hv: host too small for Dom0")
	}
	dom0.Mem = exts
	dom0.MemBytes = dom0Bytes
	h.domains[0] = dom0
	return h
}

// charge advances the clock by one hypercall plus extra work.
func (h *Hypervisor) charge(extra sim.Duration) {
	h.Count.Hypercalls++
	h.Clock.Sleep(costs.Hypercall + extra)
}

// Domain returns the domain with the given ID.
func (h *Hypervisor) Domain(id DomID) (*Domain, error) {
	d, ok := h.domains[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchDomain, id)
	}
	return d, nil
}

// NumDomains reports the number of live guest domains (excluding Dom0).
func (h *Hypervisor) NumDomains() int { return len(h.domains) - 1 }

// DomainIDs returns all guest domain IDs in ascending order.
func (h *Hypervisor) DomainIDs() []DomID {
	out := make([]DomID, 0, len(h.domains))
	for id := range h.domains {
		if id != 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CreateDomain is the domain-creation hypercall: it reserves an ID and
// management structures and pins vCPUs to cores. Memory is populated
// separately (PopulatePhysmap), matching the real split used by the
// split toolstack's prepare phase.
func (h *Hypervisor) CreateDomain(cfg Config) (*Domain, error) {
	if cfg.VCPUs <= 0 {
		cfg.VCPUs = 1
	}
	d := &Domain{
		ID:        h.nextID,
		State:     StateCreated,
		MaxMem:    cfg.MaxMem,
		CreatedAt: h.Clock.Now(),
	}
	h.nextID++
	for i := 0; i < cfg.VCPUs; i++ {
		core := i
		if len(cfg.Cores) > 0 {
			core = cfg.Cores[i%len(cfg.Cores)]
		}
		d.VCPUs = append(d.VCPUs, VCPU{ID: i, Core: core})
	}
	h.domains[d.ID] = d
	h.Count.DomainsMade++
	h.charge(costs.HypervisorReserve)
	return d, nil
}

// PopulatePhysmap allocates bytes of guest memory, charging the per-MB
// preparation cost (p2m setup, scrubbing bookkeeping).
func (h *Hypervisor) PopulatePhysmap(id DomID, bytes uint64) error {
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.State == StateDying {
		return ErrBadState
	}
	exts, err := h.Mem.AllocBytes(bytes, mm.Owner(id))
	if err != nil {
		return err
	}
	d.Mem = append(d.Mem, exts...)
	d.MemBytes += bytes
	mb := float64(bytes) / (1024 * 1024)
	h.charge(sim.Duration(mb * float64(costs.MemReservePerMB)))
	return nil
}

// PopulateShared maps a content-keyed shared region into the domain
// (the §9 deduplication extension): the first guest pays the pages,
// later guests only pay the mapping hypercalls. The domain's memory
// is logically bytes larger, but host memory is charged once.
func (h *Hypervisor) PopulateShared(id DomID, key string, bytes uint64) error {
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.State == StateDying {
		return ErrBadState
	}
	if _, err := h.Share.Acquire(key, bytes); err != nil {
		return err
	}
	d.SharedBytes += bytes
	d.SharedKeys = append(d.SharedKeys, key)
	d.MemBytes += bytes
	// Mapping existing pages is far cheaper than populating fresh
	// ones: no allocation, no scrubbing — p2m entries only.
	mb := float64(bytes) / (1024 * 1024)
	h.charge(sim.Duration(mb * float64(costs.MemReservePerMB) / 4))
	return nil
}

// LoadImage charges the image parse+copy cost and records the kernel.
func (h *Hypervisor) LoadImage(id DomID, name string, size uint64) error {
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.State != StateCreated && d.State != StatePaused {
		return fmt.Errorf("%w: load into %v domain", ErrBadState, d.State)
	}
	if d.MemBytes == 0 {
		return fmt.Errorf("hv: domain %d has no memory populated", id)
	}
	mb := float64(size) / (1024 * 1024)
	h.charge(costs.ImageLoadBase + sim.Duration(mb*float64(costs.ImageLoadPerMB)))
	d.KernelSize = size
	d.KernelName = name
	d.KernelEntry = 0xffffffff80000000
	d.State = StatePaused
	return nil
}

// Unpause schedules the domain; the guest begins booting.
func (h *Hypervisor) Unpause(id DomID) error {
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.State != StatePaused && d.State != StateSuspended {
		return fmt.Errorf("%w: unpause %v domain", ErrBadState, d.State)
	}
	d.State = StateRunning
	d.BootedAt = h.Clock.Now()
	h.charge(costs.VMBootKick)
	return nil
}

// Pause deschedules a running domain.
func (h *Hypervisor) Pause(id DomID) error {
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.State != StateRunning {
		return fmt.Errorf("%w: pause %v domain", ErrBadState, d.State)
	}
	d.State = StatePaused
	h.charge(0)
	return nil
}

// Suspend marks the domain suspended (invoked after the guest
// acknowledges the suspend request).
func (h *Hypervisor) Suspend(id DomID, reason string) error {
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.State != StateRunning && d.State != StatePaused {
		return fmt.Errorf("%w: suspend %v domain", ErrBadState, d.State)
	}
	d.State = StateSuspended
	d.ShutdownReason = reason
	h.charge(0)
	return nil
}

// DestroyDomain tears the domain down and releases its memory, event
// channels and grants.
func (h *Hypervisor) DestroyDomain(id DomID) error {
	if id == 0 {
		return ErrNotPrivileged
	}
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	d.State = StateDying
	for port, ch := range h.ports {
		if ch.owner == id || ch.peer == id {
			delete(h.ports, port)
		}
	}
	for ref, g := range h.grants {
		// Both endpoints release: a dying guest's mappings of Dom0
		// backend grants (owner=0, peer=guest) must not outlive it, or
		// the grant table fills with entries no one can ever end.
		if g.owner == id || g.peer == id {
			delete(h.grants, ref)
		}
	}
	h.Mem.FreeOwner(mm.Owner(id))
	for _, key := range d.SharedKeys {
		if err := h.Share.Release(key); err != nil {
			return fmt.Errorf("hv: destroy %d: %w", id, err)
		}
	}
	delete(h.domains, id)
	h.Count.DomainsGone++
	// Teardown walks the page lists; charge proportional to memory.
	mb := float64(d.MemBytes) / (1024 * 1024)
	h.charge(sim.Duration(mb * float64(costs.MemReservePerMB) / 2))
	return nil
}

// UsedMemBytes reports total allocated host memory (Dom0 + guests).
func (h *Hypervisor) UsedMemBytes() uint64 { return h.Mem.UsedBytes() }
