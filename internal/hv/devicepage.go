package hv

import (
	"fmt"

	"lightvm/internal/costs"
)

// DevKind enumerates split-device types carried on the noxs device
// page (paper §5.1: block, networking, plus the sysctl power pseudo-
// device used for suspend/migration).
type DevKind int

// Device kinds.
const (
	DevVif DevKind = iota
	DevVbd
	DevConsole
	DevSysctl
)

var devKindNames = [...]string{"vif", "vbd", "console", "sysctl"}

func (k DevKind) String() string {
	if int(k) < len(devKindNames) {
		return devKindNames[k]
	}
	return fmt.Sprintf("dev(%d)", int(k))
}

// DevEntry is one device record in a domain's device page: exactly the
// information the XenStore handshake would otherwise convey (Fig. 7b:
// backend-id, event channel id, grant reference).
type DevEntry struct {
	Kind      DevKind
	Index     int
	BackendID DomID
	Evtchn    Port
	CtrlGrant GrantRef // grant for the device control page
	MAC       string   // vif only
	State     int      // xenbus-style state carried in the control page
}

// DevicePageSlots bounds entries per page (a 4 KiB page of records).
const DevicePageSlots = 32

// DevicePage is the read-only-to-guest page the hypervisor maintains
// per domain under noxs. Only Dom0 may request modifications.
type DevicePage struct {
	Entries []DevEntry
}

// CreateDevicePage allocates the per-domain device page. Idempotent.
func (h *Hypervisor) CreateDevicePage(id DomID) error {
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.DevPage == nil {
		d.DevPage = &DevicePage{}
	}
	h.charge(0)
	return nil
}

// DevicePageWrite appends a device entry; the hypercall is restricted
// to Dom0 ("the page is shared read-only with guests, with only Dom0
// allowed to request modifications").
func (h *Hypervisor) DevicePageWrite(caller, id DomID, e DevEntry) error {
	if caller != 0 {
		return ErrNotPrivileged
	}
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.DevPage == nil {
		d.DevPage = &DevicePage{}
	}
	if len(d.DevPage.Entries) >= DevicePageSlots {
		return ErrDevPageFull
	}
	d.DevPage.Entries = append(d.DevPage.Entries, e)
	h.charge(costs.NoxsDevicePageWrite)
	return nil
}

// DevicePageRemove deletes the entry for (kind, index).
func (h *Hypervisor) DevicePageRemove(caller, id DomID, kind DevKind, index int) error {
	if caller != 0 {
		return ErrNotPrivileged
	}
	d, err := h.Domain(id)
	if err != nil {
		return err
	}
	if d.DevPage == nil {
		return fmt.Errorf("hv: domain %d has no device page", id)
	}
	for i, e := range d.DevPage.Entries {
		if e.Kind == kind && e.Index == index {
			d.DevPage.Entries = append(d.DevPage.Entries[:i], d.DevPage.Entries[i+1:]...)
			h.charge(costs.NoxsDevicePageWrite)
			return nil
		}
	}
	return fmt.Errorf("hv: domain %d has no %v[%d] entry", id, kind, index)
}

// DevicePageMap is the guest-side hypercall pair: ask for the device
// page address and map it read-only (Fig. 7b step 3). It returns a
// snapshot of the entries.
func (h *Hypervisor) DevicePageMap(id DomID) ([]DevEntry, error) {
	d, err := h.Domain(id)
	if err != nil {
		return nil, err
	}
	h.Count.DevPageReads++
	h.charge(costs.NoxsDevicePageMap)
	if d.DevPage == nil {
		return nil, nil
	}
	out := make([]DevEntry, len(d.DevPage.Entries))
	copy(out, d.DevPage.Entries)
	return out, nil
}
