package vnet

import (
	"testing"

	"lightvm/internal/sim"
)

func newSwitch() (*Switch, *sim.Clock) {
	c := sim.NewClock()
	return NewSwitch(c), c
}

func TestAttachDetach(t *testing.T) {
	s, _ := newSwitch()
	if err := s.AttachPort("vif1.0"); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachPort("vif1.0"); err == nil {
		t.Fatal("duplicate attach accepted")
	}
	if s.Ports() != 1 {
		t.Fatalf("ports = %d", s.Ports())
	}
	if err := s.DetachPort("vif1.0"); err != nil {
		t.Fatal(err)
	}
	if err := s.DetachPort("vif1.0"); err == nil {
		t.Fatal("double detach accepted")
	}
}

func TestDeliveryToHandler(t *testing.T) {
	s, _ := newSwitch()
	_ = s.AttachPort("dst")
	var got []Packet
	_ = s.SetHandler("dst", func(p Packet) { got = append(got, p) })
	if !s.Send(Packet{Src: "a", Dst: "dst", Kind: PktUDP, Size: 1400}) {
		t.Fatal("send failed")
	}
	if len(got) != 1 || got[0].Size != 1400 {
		t.Fatalf("delivered %v", got)
	}
	if s.Count.Forwarded != 1 {
		t.Fatalf("forwarded = %d", s.Count.Forwarded)
	}
}

func TestSendToMissingPortDrops(t *testing.T) {
	s, _ := newSwitch()
	if s.Send(Packet{Dst: "ghost"}) {
		t.Fatal("send to missing port succeeded")
	}
	if s.Count.Dropped != 1 {
		t.Fatalf("dropped = %d", s.Count.Dropped)
	}
}

func TestQueueingUntilHandlerAppears(t *testing.T) {
	// Models a packet arriving while the JIT VM is still booting.
	s, _ := newSwitch()
	_ = s.AttachPort("booting")
	if !s.Send(Packet{Dst: "booting", Kind: PktICMPEcho, Seq: 1}) {
		t.Fatal("packet for booting port dropped")
	}
	if s.Backlog() != 1 {
		t.Fatalf("backlog = %d", s.Backlog())
	}
	var got []Packet
	_ = s.SetHandler("booting", func(p Packet) { got = append(got, p) })
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("queued packet not flushed: %v", got)
	}
	if s.Backlog() != 0 {
		t.Fatal("backlog not drained")
	}
}

func TestBacklogOverflowDrops(t *testing.T) {
	s, _ := newSwitch()
	s.QueueLimit = 4
	_ = s.AttachPort("slow")
	for i := 0; i < 4; i++ {
		if !s.Send(Packet{Dst: "slow", Seq: uint64(i)}) {
			t.Fatalf("packet %d dropped below limit", i)
		}
	}
	if s.Send(Packet{Dst: "slow", Seq: 99}) {
		t.Fatal("packet above backlog limit accepted")
	}
	if s.Count.Dropped != 1 {
		t.Fatalf("dropped = %d", s.Count.Dropped)
	}
}

func TestDetachClearsBacklog(t *testing.T) {
	s, _ := newSwitch()
	_ = s.AttachPort("p")
	_ = s.Send(Packet{Dst: "p"})
	_ = s.Send(Packet{Dst: "p"})
	_ = s.DetachPort("p")
	if s.Backlog() != 0 {
		t.Fatalf("backlog after detach = %d", s.Backlog())
	}
}

func TestForwardingChargesClock(t *testing.T) {
	s, c := newSwitch()
	_ = s.AttachPort("d")
	_ = s.SetHandler("d", func(Packet) {})
	before := c.Now()
	s.Send(Packet{Dst: "d"})
	if c.Now() <= before {
		t.Fatal("forwarding consumed no time")
	}
}

func TestPingRoundTrip(t *testing.T) {
	s, _ := newSwitch()
	_ = s.AttachPort("fw")
	_ = s.AttachPort("client")
	// Firewall VM answers echoes.
	_ = s.SetHandler("fw", func(p Packet) {
		if p.Kind == PktICMPEcho {
			s.Send(Packet{Src: "fw", Dst: p.Src, Kind: PktICMPReply, Seq: p.Seq})
		}
	})
	if !s.Ping("client", "fw", 7) {
		t.Fatal("ping got no reply")
	}
	// Ping to a booting (handler-less) port queues, no reply.
	_ = s.AttachPort("cold")
	if s.Ping("client", "cold", 8) {
		t.Fatal("ping to booting VM replied")
	}
}

func TestSetHandlerUnknownPort(t *testing.T) {
	s, _ := newSwitch()
	if err := s.SetHandler("nope", func(Packet) {}); err == nil {
		t.Fatal("SetHandler on missing port accepted")
	}
}

func TestPacketKindString(t *testing.T) {
	if PktARP.String() != "arp" || PktICMPReply.String() != "icmp-reply" {
		t.Fatal("kind names wrong")
	}
}

func TestFlowDeliversAtRate(t *testing.T) {
	s, c := newSwitch()
	_ = s.AttachPort("client")
	_ = s.AttachPort("server")
	received := 0
	_ = s.SetHandler("server", func(Packet) { received++ })
	_ = s.SetHandler("client", func(Packet) {})
	f, err := NewFlow(s, "client", "server", 10_000_000, 1500) // 10 Mbps
	if err != nil {
		t.Fatal(err)
	}
	start := c.Now()
	delivered := f.Run(100 * 1e6) // 100ms
	window := c.Now().Sub(start)
	// 10 Mbps of 1500B packets ≈ 833 pps → ~83 packets in 100ms.
	if delivered < 70 || delivered > 95 {
		t.Fatalf("delivered %d packets in %v", delivered, window)
	}
	if received != int(delivered) {
		t.Fatalf("handler saw %d, delivered %d", received, delivered)
	}
	bps := f.DeliveredBps(delivered, 100*1e6)
	if bps < 8e6 || bps > 11e6 {
		t.Fatalf("achieved %.1f Mbps, want ≈10", bps/1e6)
	}
	if f.Dropped != 0 {
		t.Fatalf("dropped %d on a healthy path", f.Dropped)
	}
}

func TestFlowToBootingPortFillsBacklog(t *testing.T) {
	s, _ := newSwitch()
	s.QueueLimit = 10
	_ = s.AttachPort("client")
	_ = s.SetHandler("client", func(Packet) {})
	_ = s.AttachPort("cold") // never gets a handler
	f, err := NewFlow(s, "client", "cold", 100_000_000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	f.Run(50 * 1e6)
	if f.Dropped == 0 {
		t.Fatal("no drops despite full backlog")
	}
	if s.Backlog() != 10 {
		t.Fatalf("backlog = %d, want at the limit", s.Backlog())
	}
}

func TestFlowValidation(t *testing.T) {
	if _, err := NewFlow(NewSwitch(sim.NewClock()), "a", "b", 1, 1); err == nil {
		t.Fatal("flow on missing ports accepted")
	}
	s, _ := newSwitch()
	_ = s.AttachPort("a")
	_ = s.AttachPort("b")
	if _, err := NewFlow(s, "a", "b", 0, 1500); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewFlow(s, "a", "b", 1000, 0); err == nil {
		t.Fatal("zero packet size accepted")
	}
}
