// Package vnet models the Dom0 software switch and the traffic the §7
// use cases push through it: a bridge with per-host queueing and a
// finite backlog (whose overflow produces the ARP drops and long ping
// tail of Fig. 16b), plus simple ping semantics.
package vnet

import (
	"errors"
	"fmt"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

// PacketKind classifies packets coarsely.
type PacketKind int

// Packet kinds.
const (
	PktARP PacketKind = iota
	PktICMPEcho
	PktICMPReply
	PktUDP
	PktTCP
)

var pktNames = [...]string{"arp", "icmp-echo", "icmp-reply", "udp", "tcp"}

func (k PacketKind) String() string {
	if int(k) < len(pktNames) {
		return pktNames[k]
	}
	return fmt.Sprintf("pkt(%d)", int(k))
}

// Packet is a frame crossing the bridge.
type Packet struct {
	Src, Dst string
	Kind     PacketKind
	Size     int // bytes
	Seq      uint64
}

// Handler consumes packets delivered to a port.
type Handler func(Packet)

// Counters tracks switch activity.
type Counters struct {
	Forwarded uint64
	Queued    uint64
	Dropped   uint64
}

// ErrNoPort is returned when sending to a non-existent port with no
// queueing allowed.
var ErrNoPort = errors.New("vnet: no such port")

// Switch is the Dom0 software bridge. Ports are attached by the
// hotplug mechanism (it implements devd.PortAttacher); packets for
// ports that exist but have no handler yet (guest still booting) are
// held in a bounded backlog and flushed when the handler appears —
// beyond the backlog limit, packets are dropped (§7.2: "our Linux
// bridge is overloaded and starts dropping packets (mostly ARP
// packets)").
type Switch struct {
	Clock      *sim.Clock
	QueueLimit int

	ports   map[string]Handler
	waiting map[string][]Packet
	backlog int
	Count   Counters
}

// NewSwitch creates a bridge with the default backlog limit.
func NewSwitch(clock *sim.Clock) *Switch {
	return &Switch{
		Clock:      clock,
		QueueLimit: costs.BridgeQueueLimit,
		ports:      make(map[string]Handler),
		waiting:    make(map[string][]Packet),
	}
}

// AttachPort implements devd.PortAttacher: the port exists but has no
// handler until the guest's stack comes up.
func (s *Switch) AttachPort(name string) error {
	if _, dup := s.ports[name]; dup {
		return fmt.Errorf("vnet: port %q already attached", name)
	}
	s.ports[name] = nil
	return nil
}

// DetachPort implements devd.PortAttacher.
func (s *Switch) DetachPort(name string) error {
	if _, ok := s.ports[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoPort, name)
	}
	delete(s.ports, name)
	s.backlog -= len(s.waiting[name])
	delete(s.waiting, name)
	return nil
}

// SetHandler installs the guest-side receive function and flushes any
// queued packets to it.
func (s *Switch) SetHandler(name string, h Handler) error {
	if _, ok := s.ports[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoPort, name)
	}
	s.ports[name] = h
	queued := s.waiting[name]
	delete(s.waiting, name)
	s.backlog -= len(queued)
	for _, pkt := range queued {
		s.deliver(h, pkt)
	}
	return nil
}

// Ports reports attached port count.
func (s *Switch) Ports() int { return len(s.ports) }

// Backlog reports packets currently queued for handler-less ports.
func (s *Switch) Backlog() int { return s.backlog }

func (s *Switch) deliver(h Handler, pkt Packet) {
	s.Clock.Sleep(costs.BridgeForward)
	s.Count.Forwarded++
	if h != nil {
		h(pkt)
	}
}

// Send forwards a packet to its destination port. It returns true if
// the packet was delivered or queued, false if it was dropped (port
// missing or backlog full).
func (s *Switch) Send(pkt Packet) bool {
	h, ok := s.ports[pkt.Dst]
	if !ok {
		s.Count.Dropped++
		return false
	}
	if h == nil {
		if s.backlog >= s.QueueLimit {
			s.Count.Dropped++
			return false
		}
		s.waiting[pkt.Dst] = append(s.waiting[pkt.Dst], pkt)
		s.backlog++
		s.Count.Queued++
		return true
	}
	s.deliver(h, pkt)
	return true
}

// Ping sends an echo request from src to dst and reports whether a
// reply arrived immediately (the common case when the guest handler
// replies synchronously). The caller measures RTT with the clock.
func (s *Switch) Ping(src, dst string, seq uint64) bool {
	replied := false
	// Install a transient reply detector on the source port.
	prev := s.ports[src]
	if _, ok := s.ports[src]; !ok {
		_ = s.AttachPort(src)
	}
	s.ports[src] = func(p Packet) {
		if p.Kind == PktICMPReply && p.Seq == seq {
			replied = true
		}
		if prev != nil {
			prev(p)
		}
	}
	ok := s.Send(Packet{Src: src, Dst: dst, Kind: PktICMPEcho, Size: 64, Seq: seq})
	s.ports[src] = prev
	return ok && replied
}
