package vnet

import (
	"fmt"
	"time"

	"lightvm/internal/sim"
)

// Flow is an iperf-style constant-rate packet generator between two
// switch ports, used to validate the use-case experiments at packet
// granularity (the paper's clients are rate-limited to 10 Mbps to
// "mimic typical 4G speeds in busy cells", §7.1).
type Flow struct {
	Switch  *Switch
	Src     string
	Dst     string
	RateBps int64 // offered load
	PktSize int   // bytes per packet

	// Counters.
	Sent    uint64
	Dropped uint64

	seq uint64
}

// NewFlow creates a flow; both ports must already exist on the switch.
func NewFlow(sw *Switch, src, dst string, rateBps int64, pktSize int) (*Flow, error) {
	if rateBps <= 0 || pktSize <= 0 {
		return nil, fmt.Errorf("vnet: flow needs positive rate and packet size")
	}
	for _, p := range []string{src, dst} {
		if _, ok := sw.ports[p]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoPort, p)
		}
	}
	return &Flow{Switch: sw, Src: src, Dst: dst, RateBps: rateBps, PktSize: pktSize}, nil
}

// Run offers traffic for d of virtual time, advancing the clock packet
// by packet, and returns the number of packets delivered (or queued).
func (f *Flow) Run(d time.Duration) uint64 {
	bits := int64(f.PktSize) * 8
	interval := time.Duration(float64(time.Second) * float64(bits) / float64(f.RateBps))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	end := f.Switch.Clock.Now().Add(d)
	delivered := uint64(0)
	for f.Switch.Clock.Now() < end {
		f.Switch.Clock.Sleep(sim.Duration(interval))
		f.seq++
		f.Sent++
		if f.Switch.Send(Packet{Src: f.Src, Dst: f.Dst, Kind: PktUDP, Size: f.PktSize, Seq: f.seq}) {
			delivered++
		} else {
			f.Dropped++
		}
	}
	return delivered
}

// DeliveredBps converts a delivered-packet count over a window into
// achieved throughput.
func (f *Flow) DeliveredBps(delivered uint64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(delivered) * float64(f.PktSize) * 8 / window.Seconds()
}
