// Package devd models the two ways Xen plumbs a freshly created
// virtual interface into the Dom0 software switch (paper §5.3):
//
//   - BashScripts: stock Xen, where xl or udevd fork+exec a bash
//     hotplug script per device — "a slow process taking tens of
//     milliseconds, considerably slowing down the boot process".
//   - Xendevd: LightVM's binary daemon that "listens for udev events
//     from the backends and executes a pre-defined setup without
//     forking or bash scripts".
//
// Both paths end by attaching the port to the bridge; the difference
// is purely dispatch overhead, making this the cleanest ablation in
// the system.
package devd

import (
	"errors"
	"fmt"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

// ErrHotplug marks a hotplug setup or teardown failure; all errors
// returned by the Hotplug implementations in this package wrap it.
var ErrHotplug = errors.New("devd: hotplug failed")

// PortAttacher is the bridge-facing half: the software switch (or a
// test fake) implements it.
type PortAttacher interface {
	AttachPort(name string) error
	DetachPort(name string) error
}

// Hotplug sets up and tears down guest vifs in Dom0.
type Hotplug interface {
	// Setup plumbs the named vif (e.g. "vif3.0") into the switch.
	Setup(vif string) error
	// Teardown removes it.
	Teardown(vif string) error
	// Name identifies the mechanism for logs and breakdowns.
	Name() string
}

// BashScripts is the stock xl/udevd hotplug path.
type BashScripts struct {
	Clock  *sim.Clock
	Bridge PortAttacher
	// Invocations counts script executions (fork+exec pairs).
	Invocations int
}

// Name implements Hotplug.
func (b *BashScripts) Name() string { return "bash-hotplug" }

// Setup forks a shell, runs the script, and attaches the port.
func (b *BashScripts) Setup(vif string) error {
	b.Invocations++
	b.Clock.Sleep(costs.HotplugBashScript + costs.VifBridgeAttach)
	if err := b.Bridge.AttachPort(vif); err != nil {
		return fmt.Errorf("%w: bash hotplug %s: %v", ErrHotplug, vif, err)
	}
	return nil
}

// Teardown forks the script again with the offline argument.
func (b *BashScripts) Teardown(vif string) error {
	b.Invocations++
	b.Clock.Sleep(costs.HotplugBashScript)
	return b.Bridge.DetachPort(vif)
}

// Xendevd is LightVM's in-process setup daemon.
type Xendevd struct {
	Clock  *sim.Clock
	Bridge PortAttacher
	// Events counts udev events handled.
	Events int
}

// Name implements Hotplug.
func (x *Xendevd) Name() string { return "xendevd" }

// Setup handles the udev event with the pre-defined binary path.
func (x *Xendevd) Setup(vif string) error {
	x.Events++
	x.Clock.Sleep(costs.HotplugXendevd + costs.VifBridgeAttach)
	if err := x.Bridge.AttachPort(vif); err != nil {
		return fmt.Errorf("%w: xendevd %s: %v", ErrHotplug, vif, err)
	}
	return nil
}

// Teardown removes the port without forking.
func (x *Xendevd) Teardown(vif string) error {
	x.Events++
	x.Clock.Sleep(costs.HotplugXendevd)
	return x.Bridge.DetachPort(vif)
}

// Failover is a Hotplug that normally delegates to Primary but falls
// back to Backup while Down reports the primary unavailable. It models
// the recovery path when xendevd has crashed: udev events still arrive,
// and the toolstack degrades to the stock bash scripts until the daemon
// restarts.
type Failover struct {
	Primary Hotplug
	Backup  Hotplug
	// Down reports whether Primary is currently unavailable.
	Down func() bool
	// Fallbacks counts operations routed to Backup.
	Fallbacks int
}

// Name implements Hotplug.
func (f *Failover) Name() string { return f.Primary.Name() + "+failover" }

func (f *Failover) pick() Hotplug {
	if f.Down != nil && f.Down() {
		f.Fallbacks++
		return f.Backup
	}
	return f.Primary
}

// Setup implements Hotplug.
func (f *Failover) Setup(vif string) error { return f.pick().Setup(vif) }

// Teardown implements Hotplug.
func (f *Failover) Teardown(vif string) error { return f.pick().Teardown(vif) }

// NullBridge is a PortAttacher that accepts everything; used where the
// experiment doesn't care about the data plane.
type NullBridge struct{ Ports int }

// AttachPort implements PortAttacher.
func (n *NullBridge) AttachPort(string) error { n.Ports++; return nil }

// DetachPort implements PortAttacher.
func (n *NullBridge) DetachPort(string) error { n.Ports--; return nil }
