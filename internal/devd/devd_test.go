package devd

import (
	"testing"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

func TestBashScriptsChargesForkExecCost(t *testing.T) {
	clock := sim.NewClock()
	br := &NullBridge{}
	hp := &BashScripts{Clock: clock, Bridge: br}
	if err := hp.Setup("vif1.0"); err != nil {
		t.Fatal(err)
	}
	if clock.Now().Sub(0) < costs.HotplugBashScript {
		t.Fatalf("bash setup charged %v, want ≥%v", clock.Now(), costs.HotplugBashScript)
	}
	if br.Ports != 1 || hp.Invocations != 1 {
		t.Fatalf("ports=%d invocations=%d", br.Ports, hp.Invocations)
	}
	if err := hp.Teardown("vif1.0"); err != nil {
		t.Fatal(err)
	}
	if br.Ports != 0 || hp.Invocations != 2 {
		t.Fatalf("after teardown: ports=%d invocations=%d", br.Ports, hp.Invocations)
	}
}

func TestXendevdMuchCheaperThanBash(t *testing.T) {
	c1, c2 := sim.NewClock(), sim.NewClock()
	bash := &BashScripts{Clock: c1, Bridge: &NullBridge{}}
	xd := &Xendevd{Clock: c2, Bridge: &NullBridge{}}
	for i := 0; i < 10; i++ {
		if err := bash.Setup("vifX"); err != nil {
			t.Fatal(err)
		}
		if err := xd.Setup("vifX"); err != nil {
			t.Fatal(err)
		}
	}
	if time.Duration(c2.Now()) >= time.Duration(c1.Now())/10 {
		t.Fatalf("xendevd (%v) not ≥10× cheaper than bash (%v)", c2.Now(), c1.Now())
	}
}

func TestNames(t *testing.T) {
	if (&BashScripts{}).Name() != "bash-hotplug" || (&Xendevd{}).Name() != "xendevd" {
		t.Fatal("hotplug names wrong")
	}
}
