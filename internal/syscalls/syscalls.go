// Package syscalls carries the Linux x86_32 system-call count dataset
// behind the paper's Figure 1 ("The unrelenting growth of the Linux
// syscall API over the years"), which motivates the security argument:
// the syscall API containers must trust keeps widening, while the x86
// ABI a VM exposes stays put.
package syscalls

import "sort"

// Release is one kernel release data point.
type Release struct {
	Version  string
	Year     int
	Syscalls int
}

// Releases is the x86_32 syscall-table history the figure plots
// (2002–2018, ~200 → ~400 calls; counts follow the syscall_32.tbl
// growth across major releases).
var Releases = []Release{
	{"2.5.0", 2002, 243},
	{"2.6.0", 2003, 274},
	{"2.6.10", 2004, 289},
	{"2.6.14", 2005, 299},
	{"2.6.19", 2006, 317},
	{"2.6.24", 2008, 325},
	{"2.6.31", 2009, 333},
	{"2.6.36", 2010, 340},
	{"3.1", 2011, 347},
	{"3.7", 2012, 349},
	{"3.12", 2013, 350},
	{"3.17", 2014, 356},
	{"4.2", 2015, 364},
	{"4.8", 2016, 377},
	{"4.14", 2017, 385},
	{"4.17", 2018, 397},
}

// ByYear returns the syscall count of the newest release in or before
// year, and whether any release qualifies.
func ByYear(year int) (int, bool) {
	count, ok := 0, false
	for _, r := range Releases { // releases are in chronological order
		if r.Year <= year {
			count, ok = r.Syscalls, true
		}
	}
	return count, ok
}

// GrowthPerYear returns the least-squares slope of syscall count over
// years — the "unrelenting growth" rate.
func GrowthPerYear() float64 {
	n := float64(len(Releases))
	var sx, sy, sxx, sxy float64
	for _, r := range Releases {
		x, y := float64(r.Year), float64(r.Syscalls)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Sorted returns the dataset ordered by year (it already is; this is
// a defensive copy for callers that mutate).
func Sorted() []Release {
	out := append([]Release(nil), Releases...)
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

// X86ABISurface is the contrast point the paper draws: the virtual
// machine interface is "memory isolation (with hardware support) and
// CPU protection rings" — a handful of interaction points (hypercalls
// in our Xen model) instead of hundreds of syscalls.
const X86ABISurface = 20
