package syscalls

import "testing"

func TestDatasetShape(t *testing.T) {
	if len(Releases) < 12 {
		t.Fatalf("dataset has %d points", len(Releases))
	}
	// Chronological and monotone non-decreasing (the figure's point).
	for i := 1; i < len(Releases); i++ {
		if Releases[i].Year < Releases[i-1].Year {
			t.Fatalf("years out of order at %d", i)
		}
		if Releases[i].Syscalls < Releases[i-1].Syscalls {
			t.Fatalf("syscall count shrank at %s", Releases[i].Version)
		}
	}
	first, last := Releases[0], Releases[len(Releases)-1]
	if first.Year != 2002 || last.Year != 2018 {
		t.Fatalf("year span %d–%d, want 2002–2018", first.Year, last.Year)
	}
	// Fig. 1 axis range: ~200 at the left, ~400 at the right.
	if first.Syscalls < 200 || first.Syscalls > 260 {
		t.Fatalf("2002 count = %d", first.Syscalls)
	}
	if last.Syscalls < 380 || last.Syscalls > 420 {
		t.Fatalf("2018 count = %d", last.Syscalls)
	}
}

func TestByYear(t *testing.T) {
	if _, ok := ByYear(1999); ok {
		t.Fatal("pre-dataset year matched")
	}
	c, ok := ByYear(2016)
	if !ok || c != 377 {
		t.Fatalf("ByYear(2016) = %d, %v", c, ok)
	}
	c, _ = ByYear(2030)
	if c != Releases[len(Releases)-1].Syscalls {
		t.Fatalf("future year = %d", c)
	}
}

func TestGrowthPositive(t *testing.T) {
	g := GrowthPerYear()
	// Roughly 9-10 syscalls/year over the span.
	if g < 5 || g > 15 {
		t.Fatalf("growth = %.1f syscalls/year", g)
	}
}

func TestSortedCopies(t *testing.T) {
	s := Sorted()
	s[0].Syscalls = -1
	if Releases[0].Syscalls == -1 {
		t.Fatal("Sorted aliased the dataset")
	}
}

func TestABISurfaceTiny(t *testing.T) {
	if X86ABISurface*10 >= Releases[0].Syscalls {
		t.Fatal("the VM interface should be an order of magnitude narrower")
	}
}
