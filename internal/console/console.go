// Package console models xenconsoled: the Dom0 daemon that drains
// each guest's console ring into a per-domain log. Guests write boot
// banners and runtime messages; `chaos -op console` and tests read
// them back. Rings are bounded like the real 4 KiB console ring —
// writers overwrite the oldest output when the reader falls behind.
package console

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"lightvm/internal/hv"
)

// RingSize is the per-domain console ring capacity in bytes.
const RingSize = 4096

// ErrNoConsole is returned for domains without an attached console.
var ErrNoConsole = errors.New("console: domain has no console")

// ring is one guest's console buffer.
type ring struct {
	buf     []byte
	dropped int // bytes overwritten before being read
}

// Daemon is the xenconsoled equivalent.
type Daemon struct {
	rings map[hv.DomID]*ring
}

// NewDaemon starts an empty console daemon.
func NewDaemon() *Daemon {
	return &Daemon{rings: make(map[hv.DomID]*ring)}
}

// Attach creates the console ring for a domain (idempotent).
func (d *Daemon) Attach(dom hv.DomID) {
	if _, ok := d.rings[dom]; !ok {
		d.rings[dom] = &ring{}
	}
}

// Detach drops a domain's console (domain destruction).
func (d *Daemon) Detach(dom hv.DomID) {
	delete(d.rings, dom)
}

// Write appends guest output to the domain's ring, overwriting the
// oldest bytes past capacity.
func (d *Daemon) Write(dom hv.DomID, msg string) error {
	r, ok := d.rings[dom]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoConsole, dom)
	}
	r.buf = append(r.buf, msg...)
	if over := len(r.buf) - RingSize; over > 0 {
		r.buf = r.buf[over:]
		r.dropped += over
	}
	return nil
}

// Writef is Write with formatting.
func (d *Daemon) Writef(dom hv.DomID, format string, args ...interface{}) error {
	return d.Write(dom, fmt.Sprintf(format, args...))
}

// Read returns the domain's buffered console output.
func (d *Daemon) Read(dom hv.DomID) (string, error) {
	r, ok := d.rings[dom]
	if !ok {
		return "", fmt.Errorf("%w: %d", ErrNoConsole, dom)
	}
	out := string(r.buf)
	if r.dropped > 0 {
		out = fmt.Sprintf("[%d bytes dropped]\n", r.dropped) + out
	}
	return out, nil
}

// Tail returns the last n lines of a domain's console.
func (d *Daemon) Tail(dom hv.DomID, n int) (string, error) {
	full, err := d.Read(dom)
	if err != nil {
		return "", err
	}
	lines := strings.Split(strings.TrimRight(full, "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	return strings.Join(lines, "\n"), nil
}

// Domains lists attached domains in order.
func (d *Daemon) Domains() []hv.DomID {
	out := make([]hv.DomID, 0, len(d.rings))
	for id := range d.rings {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
