package console

import (
	"errors"
	"strings"
	"testing"
)

func TestWriteRead(t *testing.T) {
	d := NewDaemon()
	d.Attach(3)
	if err := d.Write(3, "booting daytime\n"); err != nil {
		t.Fatal(err)
	}
	if err := d.Writef(3, "ready in %dms\n", 4); err != nil {
		t.Fatal(err)
	}
	out, err := d.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "booting daytime") || !strings.Contains(out, "ready in 4ms") {
		t.Fatalf("console = %q", out)
	}
}

func TestNoConsole(t *testing.T) {
	d := NewDaemon()
	if err := d.Write(9, "x"); !errors.Is(err, ErrNoConsole) {
		t.Fatalf("write without attach: %v", err)
	}
	if _, err := d.Read(9); !errors.Is(err, ErrNoConsole) {
		t.Fatalf("read without attach: %v", err)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	d := NewDaemon()
	d.Attach(1)
	first := strings.Repeat("A", 1000)
	_ = d.Write(1, first)
	_ = d.Write(1, strings.Repeat("B", RingSize))
	out, _ := d.Read(1)
	if strings.Contains(out, "A") {
		t.Fatal("oldest bytes survived overflow")
	}
	if !strings.Contains(out, "bytes dropped") {
		t.Fatal("drop marker missing")
	}
	if len(out) > RingSize+64 {
		t.Fatalf("ring exceeded capacity: %d", len(out))
	}
}

func TestTail(t *testing.T) {
	d := NewDaemon()
	d.Attach(2)
	_ = d.Write(2, "l1\nl2\nl3\nl4\n")
	got, err := d.Tail(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != "l3\nl4" {
		t.Fatalf("tail = %q", got)
	}
	// Tail larger than content returns everything.
	all, _ := d.Tail(2, 100)
	if !strings.HasPrefix(all, "l1") {
		t.Fatalf("full tail = %q", all)
	}
}

func TestDetachAndDomains(t *testing.T) {
	d := NewDaemon()
	d.Attach(5)
	d.Attach(2)
	d.Attach(5) // idempotent
	ids := d.Domains()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 5 {
		t.Fatalf("domains = %v", ids)
	}
	d.Detach(5)
	if len(d.Domains()) != 1 {
		t.Fatal("detach ineffective")
	}
}
