package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/container"
	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/migrate"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func init() {
	register("fig12a", fig12a)
	register("fig12b", fig12b)
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15", fig15)
}

// ckptModes are the Fig. 12/13 configurations.
var ckptModes = []struct {
	mode  toolstack.Mode
	label string
}{
	{toolstack.ModeXL, "xl"},
	{toolstack.ModeChaosXS, "chaos_xs"},
	{toolstack.ModeChaosNoXS, "lightvm"}, // checkpoint path == noxs + chaos
}

// checkpointSweep grows a host to each sampled population and
// checkpoints batches of 10 randomly chosen guests (the paper's
// procedure), returning mean save and restore times per point.
func checkpointSweep(mode toolstack.Mode, n int, points []int, seed uint64) (save, restore map[int]float64, err error) {
	h, err := core.NewHost(sched.Xeon4Ckpt, seed)
	if err != nil {
		return nil, nil, err
	}
	drv := h.Driver(mode)
	rng := sim.NewRNG(seed)
	img := guest.Daytime()
	save = map[int]float64{}
	restore = map[int]float64{}
	running := 0
	nextID := 0
	for _, p := range points {
		for running < p {
			nextID++
			if _, err := drv.Create(fmt.Sprintf("g%d", nextID), img); err != nil {
				return nil, nil, err
			}
			running++
		}
		var saveSum, restSum time.Duration
		const batch = 10
		done := 0
		for b := 0; b < batch; b++ {
			// Pick a random running guest.
			name := fmt.Sprintf("g%d", 1+rng.Intn(nextID))
			vm, err := h.Env.VM(name)
			if err != nil {
				continue // mid-checkpoint this round; skip
			}
			cp, st, err := migrate.Save(h.Env, vm)
			if err != nil {
				return nil, nil, err
			}
			saveSum += st
			_, rt, err := migrate.Restore(h.Env, cp)
			if err != nil {
				return nil, nil, err
			}
			restSum += rt
			done++
		}
		if done == 0 {
			continue
		}
		save[p] = float64(saveSum) / float64(done) / float64(time.Millisecond)
		restore[p] = float64(restSum) / float64(done) / float64(time.Millisecond)
	}
	return save, restore, nil
}

func fig12(o Options, which string) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	title := "Figure 12a: save times (daytime unikernel)"
	if which == "restore" {
		title = "Figure 12b: restore times (daytime unikernel)"
	}
	t := metrics.NewTable(title, "n", "xl_ms", "chaos_xs_ms", "lightvm_ms")
	cols := make([]map[int]float64, len(ckptModes))
	// One independent host+clock per toolstack configuration.
	err := o.runSeries(len(ckptModes), func(i int) error {
		s, r, err := checkpointSweep(ckptModes[i].mode, n, points, o.Seed)
		if err != nil {
			return err
		}
		if which == "save" {
			cols[i] = s
		} else {
			cols[i] = r
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	for _, p := range points {
		t.AddRow(float64(p), cols[0][p], cols[1][p], cols[2][p])
	}
	t.Note("paper: LightVM saves ~30ms / restores ~20ms flat; xl ~128ms / ~550ms")
	id := "fig12a"
	paper := "LightVM save ≈30ms regardless of N; xl ≈128ms"
	if which == "restore" {
		id = "fig12b"
		paper = "LightVM restore ≈20ms regardless of N; xl ≈550ms"
	}
	return Result{ID: id, Paper: paper, Table: t}, nil
}

func fig12a(o Options) (Result, error) { return fig12(o, "save") }
func fig12b(o Options) (Result, error) { return fig12(o, "restore") }

// fig13 — migration times for the daytime unikernel, batches of 10
// at growing populations, across toolstacks.
func fig13(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	t := metrics.NewTable("Figure 13: migration times (daytime unikernel)",
		"n", "xl_ms", "chaos_xs_ms", "lightvm_ms")
	cols := make([]map[int]float64, len(ckptModes))
	virtMS := make([]float64, len(ckptModes))
	// Each driver pair (src+dst hosts on a shared clock) is an isolated
	// timeline — sweep the toolstacks in parallel.
	err := o.runSeries(len(ckptModes), func(i int) error {
		clock := sim.NewClock()
		src, err := core.NewHostOn(clock, sched.Xeon4Ckpt, o.Seed)
		if err != nil {
			return err
		}
		dst, err := core.NewHostOn(clock, sched.Machine{Name: "dst", Cores: 4, Dom0Cores: 2, MemoryGB: 512}, o.Seed+1)
		if err != nil {
			return err
		}
		drv := src.Driver(ckptModes[i].mode)
		rng := sim.NewRNG(o.Seed + uint64(i))
		img := guest.Daytime()
		vals := map[int]float64{}
		running, nextID, migID := 0, 0, 0
		for _, p := range points {
			for running < p {
				nextID++
				if _, err := drv.Create(fmt.Sprintf("g%d", nextID), img); err != nil {
					return err
				}
				running++
			}
			var sum time.Duration
			const batch = 10
			migrated := 0
			for b := 0; b < batch; b++ {
				name := fmt.Sprintf("g%d", 1+rng.Intn(nextID))
				vm, err := src.Env.VM(name)
				if err != nil {
					continue // already migrated
				}
				_, d, err := src.MigrateTo(dst, vm)
				if err != nil {
					return err
				}
				sum += d
				migrated++
				running--
				// Replace the migrated guest to keep N constant (the
				// paper's procedure).
				migID++
				if _, err := drv.Create(fmt.Sprintf("r%d-%d", i, migID), img); err != nil {
					return err
				}
				running++
			}
			if migrated > 0 {
				vals[p] = float64(sum) / float64(migrated) / float64(time.Millisecond)
			}
		}
		cols[i] = vals
		virtMS[i] = clock.Now().Milliseconds()
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	for _, p := range points {
		t.AddRow(float64(p), cols[0][p], cols[1][p], cols[2][p])
	}
	t.Note("paper: LightVM ~60ms flat; chaos[XS] slightly faster at low N (noxs device destruction unoptimized); xl grows with N")
	return Result{ID: "fig13", Paper: "LightVM migrates in ~60ms regardless of N", Table: t, VirtualMS: maxOf(virtMS)}, nil
}

// fig14 — memory usage vs number of guests for Debian, Tinyx,
// Docker/Micropython, the Minipython unikernel, and processes.
func fig14(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	big := sched.Machine{Name: "mem-host", Cores: 4, Dom0Cores: 1, MemoryGB: 160}
	vmSweep := func(img guest.Image) (map[int]float64, float64, error) {
		h, err := core.NewHost(big, o.Seed)
		if err != nil {
			return nil, 0, err
		}
		base := h.MemoryUsedBytes()
		drv := h.Driver(toolstack.ModeChaosNoXS)
		out := map[int]float64{}
		for i := 1; i <= n; i++ {
			if _, err := drv.Create(fmt.Sprintf("g%d", i), img); err != nil {
				return nil, 0, err
			}
			if wanted[i] {
				out[i] = float64(h.MemoryUsedBytes()-base) / (1 << 20)
			}
		}
		return out, h.Clock.Now().Milliseconds(), nil
	}
	// Five independent hosts: three VM flavors, Docker, and raw
	// processes.
	cols := make([]map[int]float64, 5)
	virtMS := make([]float64, 5)
	err := o.runSeries(5, func(j int) error {
		switch j {
		case 0:
			m, v, err := vmSweep(guest.DebianMicropython())
			cols[j], virtMS[j] = m, v
			return err
		case 1:
			m, v, err := vmSweep(guest.TinyxMicropython())
			cols[j], virtMS[j] = m, v
			return err
		case 2:
			m, v, err := vmSweep(guest.Minipython())
			cols[j], virtMS[j] = m, v
			return err
		case 3:
			// Docker/Micropython.
			h, err := core.NewHost(big, o.Seed)
			if err != nil {
				return err
			}
			base := h.MemoryUsedBytes()
			docker := map[int]float64{}
			for i := 1; i <= n; i++ {
				if _, err := h.Docker.Run("micropython"); err != nil {
					return err
				}
				if wanted[i] {
					docker[i] = float64(h.MemoryUsedBytes()-base) / (1 << 20)
				}
			}
			cols[j], virtMS[j] = docker, h.Clock.Now().Milliseconds()
			return nil
		default:
			// Micropython processes.
			h, err := core.NewHost(big, o.Seed)
			if err != nil {
				return err
			}
			base := h.MemoryUsedBytes()
			procs := map[int]float64{}
			perProc := uint64(container.ProcessMicropyBytes())
			for i := 1; i <= n; i++ {
				if _, err := h.Procs.Spawn(perProc); err != nil {
					return err
				}
				if wanted[i] {
					procs[i] = float64(h.MemoryUsedBytes()-base) / (1 << 20)
				}
			}
			cols[j], virtMS[j] = procs, h.Clock.Now().Milliseconds()
			return nil
		}
	})
	if err != nil {
		return Result{}, err
	}
	debian, tinyx, minipy, docker, procs := cols[0], cols[1], cols[2], cols[3], cols[4]
	t := metrics.NewTable("Figure 14: memory usage vs number of instances (MB)",
		"n", "debian_mb", "tinyx_mb", "docker_mb", "minipython_mb", "process_mb")
	for _, p := range points {
		t.AddRow(float64(p), debian[p], tinyx[p], docker[p], minipy[p], procs[p])
	}
	t.Note("paper @1000: debian ≈114GB, tinyx ≈27GB, docker ≈5GB, minipython close to docker")
	return Result{ID: "fig14", Paper: "unikernel memory close to Docker; Tinyx +22GB at 1000; Debian ~114GB", Table: t, VirtualMS: maxOf(virtMS)}, nil
}

// fig15 — CPU utilization vs number of guests for noop unikernel,
// Tinyx, Debian and Docker.
func fig15(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	big := sched.Machine{Name: "cpu-host", Cores: 4, Dom0Cores: 1, MemoryGB: 160}
	vmSweep := func(img guest.Image) (map[int]float64, float64, error) {
		h, err := core.NewHost(big, o.Seed)
		if err != nil {
			return nil, 0, err
		}
		drv := h.Driver(toolstack.ModeChaosNoXS)
		out := map[int]float64{}
		for i := 1; i <= n; i++ {
			if _, err := drv.Create(fmt.Sprintf("g%d", i), img); err != nil {
				return nil, 0, err
			}
			if wanted[i] {
				out[i] = h.CPUUtilization() * 100
			}
		}
		return out, h.Clock.Now().Milliseconds(), nil
	}
	// Four independent hosts: three guest flavors plus Docker.
	cols := make([]map[int]float64, 4)
	virtMS := make([]float64, 4)
	err := o.runSeries(4, func(j int) error {
		switch j {
		case 0:
			m, v, err := vmSweep(guest.DebianMinimal())
			cols[j], virtMS[j] = m, v
			return err
		case 1:
			m, v, err := vmSweep(guest.TinyxNoop())
			cols[j], virtMS[j] = m, v
			return err
		case 2:
			m, v, err := vmSweep(guest.Noop())
			cols[j], virtMS[j] = m, v
			return err
		default:
			// Docker: idle containers, utilization from duty cycles.
			h, err := core.NewHost(big, o.Seed)
			if err != nil {
				return err
			}
			docker := map[int]float64{}
			for i := 1; i <= n; i++ {
				if _, err := h.Docker.Run("noop"); err != nil {
					return err
				}
				h.Env.Sched.AddGuest(0, 0, 0, containerUtilDuty)
				if wanted[i] {
					docker[i] = h.CPUUtilization() * 100
				}
			}
			cols[j], virtMS[j] = docker, h.Clock.Now().Milliseconds()
			return nil
		}
	})
	if err != nil {
		return Result{}, err
	}
	debian, tinyx, uni, docker := cols[0], cols[1], cols[2], cols[3]
	t := metrics.NewTable("Figure 15: CPU utilization (%) vs number of guests",
		"n", "debian_pct", "tinyx_pct", "unikernel_pct", "docker_pct")
	for _, p := range points {
		t.AddRow(float64(p), debian[p], tinyx[p], uni[p], docker[p])
	}
	t.Note("paper @1000: debian ≈25%%, tinyx ≈1%%, unikernel a fraction above docker (lowest)")
	return Result{ID: "fig15", Paper: "Debian ~25% at 1000 guests; Tinyx ~1%; unikernel ≈ Docker", Table: t, VirtualMS: maxOf(virtMS)}, nil
}

// containerUtilDuty is an idle container's reported duty cycle.
const containerUtilDuty = 0.0000040
