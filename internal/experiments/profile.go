package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"lightvm/internal/profiling"
)

// Per-figure profiling. With Options.Profile set, RunMany wraps each
// selected generator in a pprof capture: a CPU profile and/or a heap
// (allocs) profile written to <Dir>/<id>.cpu.pb.gz / <id>.heap.pb.gz,
// plus a symbol-bucket summary (top subsystems by flat CPU time and
// heap bytes) attached to the figure's Result.Profile.
//
// CPU profiling is process-global — the runtime supports one profile
// at a time and it samples every thread — so parallel runs serialize
// *profiled* figures through a one-token gate (profGate) while
// unprofiled figures keep the worker pool busy. Two consequences,
// both deliberate:
//
//   - A profiled figure's raw .pb.gz still contains samples from
//     whatever unprofiled figures ran concurrently. The summary
//     corrects for this: every profiled run executes under a pprof
//     goroutine label (figure=<id>, inherited by the figure's nested
//     series workers), and the report only counts samples carrying
//     that label. The foreign remainder is reported separately
//     (CPUForeignNanos) so pollution is visible, not silent.
//   - Heap attribution subtracts a pre-run alloc_space baseline from
//     the post-run profile. Memory profiles carry no goroutine
//     labels, so in parallel mode the delta also includes whatever
//     concurrent figures allocated during the run. For exact heap
//     attribution, run with Parallel=1 (the gate then costs nothing —
//     everything is already serial).

// ProfileOptions selects per-figure pprof capture.
type ProfileOptions struct {
	// CPU captures a CPU profile per selected figure.
	CPU bool
	// Heap captures a heap (allocs) profile per selected figure.
	Heap bool
	// Dir is where <id>.cpu.pb.gz / <id>.heap.pb.gz land ("." when
	// empty); it is created if missing.
	Dir string
	// Only restricts profiling to these figure ids (empty = every
	// figure in the run). Unlisted figures run unprofiled — in
	// parallel mode, concurrently with the profiled ones.
	Only []string
}

func (p ProfileOptions) enabled() bool { return p.CPU || p.Heap }

// wants reports whether figure id is selected for profiling.
func (p ProfileOptions) wants(id string) bool {
	if !p.enabled() {
		return false
	}
	if len(p.Only) == 0 {
		return true
	}
	for _, only := range p.Only {
		if only == id {
			return true
		}
	}
	return false
}

func (p ProfileOptions) dir() string {
	if p.Dir == "" {
		return "."
	}
	return p.Dir
}

// topSubsystems is the summary depth: the report keeps the top-5
// subsystems per dimension.
const topSubsystems = 5

// topAllocSites is the function-level depth of the heap report: enough
// entries to see past mallocgc wrappers to the actual hot sites.
const topAllocSites = 10

// ProfileSummary is the per-figure attribution report: where the
// captured profiles landed and which subsystems dominate them.
type ProfileSummary struct {
	// CPUFile / HeapFile are the written profile paths ("" if that
	// mode was off).
	CPUFile  string `json:"cpu_file,omitempty"`
	HeapFile string `json:"heap_file,omitempty"`
	// CPU ranks subsystems by flat CPU time over the samples labeled
	// with this figure; Heap by flat allocated bytes over the pre/post
	// alloc_space delta. Top-5 each, deterministic order.
	CPU  []profiling.Cost `json:"cpu,omitempty"`
	Heap []profiling.Cost `json:"heap,omitempty"`
	// HeapTopFuncs drills the heap delta down to the top flat
	// allocation sites (function-level), each tagged with the subsystem
	// it bills to — so "who allocates" is answerable from the JSON
	// report without opening the .pb.gz in pprof.
	HeapTopFuncs []profiling.FuncCost `json:"heap_top_funcs,omitempty"`
	// CPUTotalNanos is the figure's own (labeled) sampled CPU time;
	// CPUForeignNanos is what else landed in the raw profile —
	// concurrent unprofiled figures, unlabeled runtime workers.
	CPUTotalNanos   int64 `json:"cpu_total_nanos,omitempty"`
	CPUForeignNanos int64 `json:"cpu_foreign_nanos,omitempty"`
	// HeapDeltaBytes is the (sampled) alloc_space growth across the
	// run.
	HeapDeltaBytes int64 `json:"heap_delta_bytes,omitempty"`
}

// String renders the summary as the one-line attribution note the CLI
// prints under each profiled figure.
func (ps *ProfileSummary) String() string {
	if ps == nil {
		return ""
	}
	var b bytes.Buffer
	line := func(kind string, costs []profiling.Cost, file string) {
		if file == "" {
			return
		}
		fmt.Fprintf(&b, "profile %s:", kind)
		if len(costs) == 0 {
			b.WriteString(" (no samples)")
		}
		for i, c := range costs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " %.1f%% %s", c.Percent, c.Subsystem)
		}
		fmt.Fprintf(&b, " (%s)\n", file)
	}
	line("cpu", ps.CPU, ps.CPUFile)
	line("heap", ps.Heap, ps.HeapFile)
	if len(ps.HeapTopFuncs) > 0 {
		b.WriteString("top alloc sites:")
		n := len(ps.HeapTopFuncs)
		if n > 3 {
			n = 3
		}
		for i, fc := range ps.HeapTopFuncs[:n] {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, " %.1f%% %s", fc.Percent, fc.Function)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// runProfiled executes one figure, wrapping it in pprof capture when
// selected. It is the single entry point RunMany uses for every job.
func runProfiled(id string, o Options) (Result, error) {
	if !o.Profile.wants(id) {
		return Run(id, o)
	}
	if o.profGate != nil {
		o.profGate <- struct{}{}
		defer func() { <-o.profGate }()
	}
	return captureProfiles(id, o)
}

// captureProfiles is runProfiled's slow path: profiles are armed, the
// generator runs under a figure label, and the attribution summary is
// computed from the captured data. Caller holds the profiling gate.
func captureProfiles(id string, o Options) (Result, error) {
	dir := o.Profile.dir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Result{}, fmt.Errorf("experiments: profile dir: %w", err)
	}
	sum := &ProfileSummary{}

	var preHeap map[string]int64
	if o.Profile.Heap {
		// Fold everything allocated so far into a baseline that the
		// post-run profile is diffed against (alloc_space is cumulative
		// for the whole process).
		runtime.GC()
		flat, err := heapFlat()
		if err != nil {
			return Result{}, err
		}
		preHeap = flat
	}

	var cpuFile *os.File
	if o.Profile.CPU {
		path := filepath.Join(dir, id+".cpu.pb.gz")
		f, err := os.Create(path)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			os.Remove(path)
			return Result{}, fmt.Errorf("experiments: start cpu profile for %s (another profile in flight?): %w", id, err)
		}
		cpuFile = f
		sum.CPUFile = path
	}

	// The label rides on the figure's goroutine and everything it
	// spawns (nested series pools included), so the CPU report can be
	// cut to exactly this figure's samples.
	var res Result
	var runErr error
	start := time.Now()
	pprof.Do(context.Background(), pprof.Labels("figure", id), func(context.Context) {
		res, runErr = Run(id, o)
	})
	wall := time.Since(start)

	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("experiments: close cpu profile: %w", err)
		}
	}
	if runErr != nil {
		return Result{}, runErr
	}

	if o.Profile.CPU {
		prof, err := profiling.ParseFile(sum.CPUFile)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: parse %s: %w", sum.CPUFile, err)
		}
		ci := prof.SampleType("cpu")
		mine := func(s *profiling.Sample) bool { return s.Label("figure") == id }
		sum.CPUTotalNanos = prof.Total(ci, mine)
		sum.CPUForeignNanos = prof.Total(ci, nil) - sum.CPUTotalNanos
		sum.CPU = profiling.TopSubsystems(profiling.SubsystemTotals(prof.Flat(ci, mine)), topSubsystems)
	}

	if o.Profile.Heap {
		runtime.GC() // flush the run's allocations into the profile
		path := filepath.Join(dir, id+".heap.pb.gz")
		f, err := os.Create(path)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: profile: %w", err)
		}
		werr := pprof.Lookup("allocs").WriteTo(f, 0)
		cerr := f.Close()
		if werr != nil {
			return Result{}, fmt.Errorf("experiments: write heap profile: %w", werr)
		}
		if cerr != nil {
			return Result{}, fmt.Errorf("experiments: write heap profile: %w", cerr)
		}
		sum.HeapFile = path
		prof, err := profiling.ParseFile(path)
		if err != nil {
			return Result{}, fmt.Errorf("experiments: parse %s: %w", path, err)
		}
		delta := profiling.DeltaFlat(prof.Flat(prof.SampleType("alloc_space"), nil), preHeap)
		for _, v := range delta {
			sum.HeapDeltaBytes += v
		}
		sum.Heap = profiling.TopSubsystems(profiling.SubsystemTotals(delta), topSubsystems)
		sum.HeapTopFuncs = profiling.TopFunctions(delta, topAllocSites)
	}

	res.Profile = sum
	res.Wall = wall
	return res, nil
}

// heapFlat snapshots the process's cumulative per-function alloc_space.
func heapFlat() (map[string]int64, error) {
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		return nil, fmt.Errorf("experiments: snapshot heap profile: %w", err)
	}
	p, err := profiling.Parse(buf.Bytes())
	if err != nil {
		return nil, fmt.Errorf("experiments: parse heap snapshot: %w", err)
	}
	return p.Flat(p.SampleType("alloc_space"), nil), nil
}
