package experiments

import (
	"fmt"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
)

func init() {
	register("ext-throughput", extThroughput)
}

// extThroughput measures sustained creation THROUGHPUT (VMs/s of
// virtual time) rather than Fig. 9's per-creation latency. The
// distinction matters for the split toolstack: its prepare work is off
// the latency path but still consumes Dom0, so its throughput
// advantage is smaller than its latency advantage — the honest cost of
// the paper's design.
func extThroughput(o Options) (Result, error) {
	n := o.scaled(500, 20)
	img := guest.Daytime()
	t := metrics.NewTable("Extension: sustained creation throughput (daytime unikernel)",
		"mode", "vms_per_sec", "latency_ms")
	// One independent host per toolstack mode; collect each mode's
	// numbers, then emit rows in legend order.
	type modeRow struct{ vmsPerSec, latencyMS, virtMS float64 }
	rows := make([]modeRow, len(allModes))
	err := o.runSeries(len(allModes), func(i int) error {
		mode := allModes[i]
		h, err := core.NewHost(sched.Xeon4, o.Seed)
		if err != nil {
			return err
		}
		if err := h.EnsureFlavor(img, mode); err != nil {
			return err
		}
		start := h.Clock.Now()
		var lastLatency float64
		for k := 0; k < n; k++ {
			if mode.UsesSplit() {
				// The daemon's replenish work counts against
				// throughput even though it is off the latency path.
				if err := h.Replenish(); err != nil {
					return err
				}
			}
			vm, err := h.CreateVM(mode, fmt.Sprintf("g%d", k), img)
			if err != nil {
				return err
			}
			lastLatency = float64(vm.CreateTime+vm.BootTime) / 1e6
		}
		elapsed := h.Clock.Now().Sub(start).Seconds()
		rows[i] = modeRow{float64(n) / elapsed, lastLatency, h.Clock.Now().Milliseconds()}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	virtMS := make([]float64, len(rows))
	for i, r := range rows {
		t.AddRow(float64(i), r.vmsPerSec, r.latencyMS)
		virtMS[i] = r.virtMS
	}
	t.Note("rows: 0=xl, 1=chaos[XS], 2=chaos[XS+split], 3=chaos[NoXS], 4=LightVM")
	t.Note("split modes buy latency, not free throughput: shell preparation still costs Dom0 time between creations")
	return Result{ID: "ext-throughput", Paper: "(derived) creation throughput behind Fig. 9's latency curves", Table: t, VirtualMS: maxOf(virtMS)}, nil
}
