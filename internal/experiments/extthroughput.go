package experiments

import (
	"fmt"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
)

func init() {
	register("ext-throughput", extThroughput)
}

// extThroughput measures sustained creation THROUGHPUT (VMs/s of
// virtual time) rather than Fig. 9's per-creation latency. The
// distinction matters for the split toolstack: its prepare work is off
// the latency path but still consumes Dom0, so its throughput
// advantage is smaller than its latency advantage — the honest cost of
// the paper's design.
func extThroughput(o Options) (Result, error) {
	n := o.scaled(500, 20)
	img := guest.Daytime()
	t := metrics.NewTable("Extension: sustained creation throughput (daytime unikernel)",
		"mode", "vms_per_sec", "latency_ms")
	for i, mode := range allModes {
		h, err := core.NewHost(sched.Xeon4, o.Seed)
		if err != nil {
			return Result{}, err
		}
		if err := h.EnsureFlavor(img, mode); err != nil {
			return Result{}, err
		}
		start := h.Clock.Now()
		var lastLatency float64
		for k := 0; k < n; k++ {
			if mode.UsesSplit() {
				// The daemon's replenish work counts against
				// throughput even though it is off the latency path.
				if err := h.Replenish(); err != nil {
					return Result{}, err
				}
			}
			vm, err := h.CreateVM(mode, fmt.Sprintf("g%d", k), img)
			if err != nil {
				return Result{}, err
			}
			lastLatency = float64(vm.CreateTime+vm.BootTime) / 1e6
		}
		elapsed := h.Clock.Now().Sub(start).Seconds()
		t.AddRow(float64(i), float64(n)/elapsed, lastLatency)
	}
	t.Note("rows: 0=xl, 1=chaos[XS], 2=chaos[XS+split], 3=chaos[NoXS], 4=LightVM")
	t.Note("split modes buy latency, not free throughput: shell preparation still costs Dom0 time between creations")
	return Result{ID: "ext-throughput", Paper: "(derived) creation throughput behind Fig. 9's latency curves", Table: t}, nil
}
