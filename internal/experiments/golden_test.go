package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lightvm/internal/metrics"
)

// Golden-figure regression tests: the figures that ride on the store's
// checkpoint/clone machinery (fig12a/b), the CPU-utilization sweep
// (fig15) and the cloning extension (ext-clone) are rendered to a
// canonical JSON document and compared byte-for-byte against committed
// goldens. Any change to the simulator that moves a published curve —
// a re-costed operation, a reordered charge, a new store primitive —
// shows up here as a diff that must be regenerated deliberately
// (`go test ./internal/experiments -run TestGoldenFigures -update`)
// and explained in the commit that carries it.

var updateGolden = flag.Bool("update", false, "rewrite golden figure files")

// goldenOptions pins the deterministic configuration the goldens were
// generated with: the default seed, a small scale so the test stays
// fast, and a sequential pool (parallel runs render byte-identical
// tables, but sequential keeps the goldens' provenance trivial).
var goldenOptions = Options{Scale: 0.05, Seed: 1, Samples: 8, Parallel: 1}

// goldenFigures are the curves the COW-store work must not move
// unintentionally.
var goldenFigures = []string{
	"fig12a", "fig12b", "fig15", "ext-clone", "ext-cluster", "ext-serve",
	// Pinned by the overload work: the fault-plane figures prove the
	// three appended fault kinds did not shift any pre-existing
	// per-kind decision stream, and ext-overload pins the metastability
	// study itself.
	"ext-faults", "ext-gray", "ext-overload",
}

// goldenOverrides replaces goldenOptions for figures whose default
// golden configuration would be too slow: ext-cluster at scale 0.05
// sweeps three worker counts over 50k domains, so its golden pins one
// worker count (the table is identical at every count — that is what
// TestShardDeterminismAcrossWorkerCounts proves) and a smaller fleet.
var goldenOverrides = map[string]Options{
	"ext-cluster": {Scale: 0.02, Seed: 1, Samples: 8, Parallel: 1, Shards: 2},
}

func goldenOpts(id string) Options {
	if o, ok := goldenOverrides[id]; ok {
		return o
	}
	return goldenOptions
}

// goldenDoc is the canonical JSON schema for one figure: everything
// deterministic about a run (virtual time and the full table), nothing
// wall-clock dependent.
type goldenDoc struct {
	ID        string      `json:"id"`
	Paper     string      `json:"paper"`
	VirtualMS float64     `json:"virtual_ms"`
	Title     string      `json:"title"`
	Columns   []string    `json:"columns"`
	Rows      [][]float64 `json:"rows"`
	Notes     []string    `json:"notes"`
}

// renderGolden runs one figure and encodes its deterministic content.
func renderGolden(t *testing.T, id string) []byte {
	t.Helper()
	return renderGoldenOpts(t, id, goldenOpts(id))
}

// renderGoldenOpts is renderGolden at an explicit configuration.
func renderGoldenOpts(t *testing.T, id string, opts Options) []byte {
	t.Helper()
	res, err := Run(id, opts)
	if err != nil {
		t.Fatalf("run %s: %v", id, err)
	}
	return encodeGolden(t, res)
}

// encodeGolden renders one Result as canonical golden JSON.
func encodeGolden(t *testing.T, res Result) []byte {
	t.Helper()
	tab, ok := res.Table.(*metrics.Table)
	if !ok {
		t.Fatalf("%s: result table is %T, not *metrics.Table", res.ID, res.Table)
	}
	doc := goldenDoc{
		ID:        res.ID,
		Paper:     res.Paper,
		VirtualMS: res.VirtualMS,
		Title:     tab.Title,
		Columns:   tab.Columns,
		Rows:      tab.Rows,
		Notes:     tab.Notes,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatalf("%s: marshal: %v", res.ID, err)
	}
	return append(buf, '\n')
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

func TestGoldenFigures(t *testing.T) {
	for _, id := range goldenFigures {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			got := renderGolden(t, id)
			path := goldenPath(id)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				// Report per-cell differences (figure, column, row, got
				// vs want) rather than two JSON blobs; see
				// goldendiff_test.go.
				diffs := diffGoldenDocs(got, want)
				if len(diffs) == 0 {
					diffs = []string{"(byte-level difference only — whitespace or key order)"}
				}
				t.Errorf("%s: output moved from committed golden %s\n  %s\n"+
					"(if this change is intentional, regenerate with "+
					"`go test ./internal/experiments -run TestGoldenFigures -update` and explain the diff in the commit)",
					id, path, strings.Join(diffs, "\n  "))
			}
		})
	}
}
