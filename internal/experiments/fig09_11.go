package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
)

func init() {
	register("fig09", fig09)
	register("fig10", fig10)
	register("fig11", fig11)
}

// allModes are the Fig. 9 configurations in legend order.
var allModes = []toolstack.Mode{
	toolstack.ModeXL, toolstack.ModeChaosXS, toolstack.ModeChaosSplit,
	toolstack.ModeChaosNoXS, toolstack.ModeLightVM,
}

// runCreationSweep boots n guests of img under mode on machine and
// returns total create+boot time (ms) at the sampled counts, plus the
// sweep's final virtual time (ms).
func runCreationSweep(machine sched.Machine, mode toolstack.Mode, img guest.Image, n int, wanted map[int]bool, seed uint64) (map[int]float64, float64, error) {
	h, err := core.NewHost(machine, seed)
	if err != nil {
		return nil, 0, err
	}
	if err := h.EnsureFlavor(img, mode); err != nil {
		return nil, 0, err
	}
	drv := h.Driver(mode)
	out := make(map[int]float64)
	for i := 1; i <= n; i++ {
		if mode.UsesSplit() {
			// The chaos daemon replenishes between creations.
			if err := h.Replenish(); err != nil {
				return nil, 0, err
			}
		}
		vm, err := drv.Create(fmt.Sprintf("g%d", i), img)
		if err != nil {
			return nil, 0, fmt.Errorf("%s #%d: %w", mode, i, err)
		}
		if wanted[i] {
			out[i] = float64(vm.CreateTime+vm.BootTime) / float64(time.Millisecond)
		}
	}
	return out, h.Clock.Now().Milliseconds(), nil
}

// fig09 — daytime-unikernel creation times for all five toolstack
// configurations, 1..1000 guests on the 4-core Xeon.
func fig09(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	t := metrics.NewTable("Figure 9: daytime unikernel creation+boot times by toolstack",
		"n", "xl_ms", "chaos_xs_ms", "chaos_split_ms", "chaos_noxs_ms", "lightvm_ms")
	img := guest.Daytime()
	cols := make([]map[int]float64, len(allModes))
	virtMS := make([]float64, len(allModes))
	// The five toolstack configurations each sweep on their own host
	// and clock — run them as parallel series.
	err := o.runSeries(len(allModes), func(i int) error {
		vals, virt, err := runCreationSweep(sched.Xeon4, allModes[i], img, n, wanted, o.Seed)
		if err != nil {
			return err
		}
		cols[i], virtMS[i] = vals, virt
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	for _, p := range points {
		t.AddRow(float64(p), cols[0][p], cols[1][p], cols[2][p], cols[3][p], cols[4][p])
	}
	t.Note("paper: xl ~100ms→~1s; chaos[XS] 15→80ms; +split max ~25ms; noxs 8→15ms; LightVM 4→4.1ms")
	return Result{ID: "fig09", Paper: "LightVM flat at ~4ms; xl grows toward 1s at 1000 guests", Table: t, VirtualMS: maxOf(virtMS)}, nil
}

// fig10 — LightVM (noop unikernel) vs Docker on the 64-core AMD
// machine, up to 8000 guests; Docker hits its memory wall around 3-4k.
func fig10(o Options) (Result, error) {
	n := o.scaled(8000, 40)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	img := guest.Noop()
	var lightvm, docker map[int]float64
	virtMS := make([]float64, 2)
	dockerWall := 0
	err := o.runSeries(2, func(j int) error {
		if j == 0 {
			var err error
			lightvm, virtMS[0], err = runCreationSweep(sched.Amd64, toolstack.ModeLightVM, img, n, wanted, o.Seed)
			return err
		}
		// Docker on the same kind of box until the memory wall.
		h, err := core.NewHost(sched.Amd64, o.Seed)
		if err != nil {
			return err
		}
		docker = make(map[int]float64)
		for i := 1; i <= n; i++ {
			c, err := h.Docker.Run("noop")
			if err != nil {
				dockerWall = i
				break
			}
			if wanted[i] {
				docker[i] = float64(c.StartTime) / float64(time.Millisecond)
			}
		}
		virtMS[1] = h.Clock.Now().Milliseconds()
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	t := metrics.NewTable("Figure 10: LightVM vs Docker boot times to 8000 guests (64-core AMD)",
		"n", "lightvm_ms", "docker_ms")
	for _, p := range points {
		d, ok := docker[p]
		if !ok {
			d = -1 // beyond the wall
		}
		t.AddRow(float64(p), lightvm[p], d)
	}
	if dockerWall > 0 {
		t.Note("docker hit the memory wall at %d containers (-1 = beyond the wall); paper stops at ~3000", dockerWall)
	}
	t.Note("paper: LightVM scales to 8000; Docker starts ~150ms and ramps toward 1s by 3000 with memory-spike steps")
	return Result{ID: "fig10", Paper: "8000 LightVM guests; Docker collapses around 3000", Table: t, VirtualMS: maxOf(virtMS)}, nil
}

// fig11 — boot times for unikernel and Tinyx guests (over LightVM)
// versus Docker containers: idle Tinyx guests dilate later boots.
func fig11(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	var uni, tinyx, docker map[int]float64
	virtMS := make([]float64, 3)
	err := o.runSeries(3, func(j int) error {
		switch j {
		case 0:
			var err error
			uni, virtMS[0], err = runCreationSweep(sched.Xeon4, toolstack.ModeLightVM, guest.Daytime(), n, wanted, o.Seed)
			return err
		case 1:
			var err error
			tinyx, virtMS[1], err = runCreationSweep(sched.Xeon4, toolstack.ModeLightVM, guest.TinyxNoop(), n, wanted, o.Seed)
			return err
		}
		h, err := core.NewHost(sched.Xeon4, o.Seed)
		if err != nil {
			return err
		}
		docker = make(map[int]float64)
		for i := 1; i <= n; i++ {
			c, err := h.Docker.Run("noop")
			if err != nil {
				return err
			}
			if wanted[i] {
				docker[i] = float64(c.StartTime) / float64(time.Millisecond)
			}
		}
		virtMS[2] = h.Clock.Now().Milliseconds()
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	t := metrics.NewTable("Figure 11: boot times — unikernel vs Tinyx (over LightVM) vs Docker",
		"n", "tinyx_ms", "docker_ms", "unikernel_ms")
	for _, p := range points {
		t.AddRow(float64(p), tinyx[p], docker[p], uni[p])
	}
	t.Note("paper: tinyx tracks docker up to ~750 guests, then idle-guest background tasks dilate its boots; unikernel stays flat")
	return Result{ID: "fig11", Paper: "Tinyx ≈ Docker to ~750 guests; unikernel flat and lowest", Table: t, VirtualMS: maxOf(virtMS)}, nil
}
