package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"lightvm/internal/profiling"
)

// profileTestOptions runs fig12a (checkpoint/restore — a store-heavy
// figure) at a scale small enough for CI but busy enough to allocate
// megabytes, so heap attribution always has samples.
func profileTestOptions(dir string) Options {
	return Options{
		Scale: 0.05, Seed: 1, Samples: 8, Parallel: 1,
		Profile: ProfileOptions{CPU: true, Heap: true, Dir: dir},
	}
}

func TestProfileCaptureSequential(t *testing.T) {
	old := runtime.MemProfileRate
	runtime.MemProfileRate = 32 << 10
	defer func() { runtime.MemProfileRate = old }()

	dir := t.TempDir()
	res, err := RunMany([]string{"fig12a"}, profileTestOptions(dir))
	if err != nil {
		t.Fatalf("RunMany: %v", err)
	}
	sum := res[0].Profile
	if sum == nil {
		t.Fatal("profiled run returned no Profile summary")
	}

	// Both profile files must exist, be non-empty and decode as pprof.
	for _, path := range []string{sum.CPUFile, sum.HeapFile} {
		if filepath.Dir(path) != dir {
			t.Fatalf("profile %s written outside -profile-dir %s", path, dir)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile file: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
		if _, err := profiling.ParseFile(path); err != nil {
			t.Fatalf("profile %s does not parse: %v", path, err)
		}
	}

	// Heap attribution: fig12a allocates megabytes inside the
	// simulator, so the delta must be populated and dominated by real
	// packages from this module.
	if sum.HeapDeltaBytes <= 0 {
		t.Fatalf("heap delta = %d", sum.HeapDeltaBytes)
	}
	if len(sum.Heap) == 0 {
		t.Fatal("heap summary empty")
	}
	internals := 0
	for i, c := range sum.Heap {
		if c.Value <= 0 || c.Percent <= 0 || c.Percent > 100 {
			t.Fatalf("heap bucket %d malformed: %+v", i, c)
		}
		if i > 0 && c.Value > sum.Heap[i-1].Value {
			t.Fatalf("heap buckets unsorted: %+v", sum.Heap)
		}
		if strings.HasPrefix(c.Subsystem, "internal/") || c.Subsystem == "lightvm" {
			internals++
		}
	}
	if internals == 0 {
		t.Fatalf("no simulator package in heap top-5: %+v", sum.Heap)
	}

	// CPU attribution is sampling-based (100 Hz): at this scale the
	// figure may be too quick to catch, so only validate shape when
	// samples landed.
	if sum.CPUTotalNanos > 0 && len(sum.CPU) == 0 {
		t.Fatalf("labeled cpu time %dns but no cpu buckets", sum.CPUTotalNanos)
	}
	for _, c := range sum.CPU {
		if got := c.Subsystem; got == "" {
			t.Fatalf("cpu bucket with empty subsystem: %+v", sum.CPU)
		}
	}
}

// TestProfileOutputUnchanged pins the acceptance requirement that
// profiling is observation-only: the rendered figure is byte-identical
// with and without capture.
func TestProfileOutputUnchanged(t *testing.T) {
	base := Options{Scale: 0.05, Seed: 1, Samples: 8, Parallel: 1}
	plain, err := RunMany([]string{"fig12a"}, base)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0].Profile != nil {
		t.Fatal("unprofiled run carries a Profile summary")
	}
	profiled, err := RunMany([]string{"fig12a"}, profileTestOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := profiled[0].Table.String(), plain[0].Table.String(); got != want {
		t.Fatalf("profiling changed figure output:\n--- profiled ---\n%s\n--- plain ---\n%s", got, want)
	}
	if profiled[0].VirtualMS != plain[0].VirtualMS {
		t.Fatalf("profiling moved virtual time: %v != %v", profiled[0].VirtualMS, plain[0].VirtualMS)
	}
}

// TestProfileParallelGate exercises the parallel path: profiled
// figures serialize through the token while unprofiled ones share the
// pool, outputs stay byte-identical, and only the selected figures get
// summaries.
func TestProfileParallelGate(t *testing.T) {
	ids := []string{"fig01", "fig02", "fig12a", "fig15"}
	dir := t.TempDir()
	o := Options{
		Scale: 0.05, Seed: 1, Samples: 8, Parallel: 4,
		Profile: ProfileOptions{CPU: true, Heap: true, Dir: dir, Only: []string{"fig12a", "fig15"}},
	}
	par, err := RunMany(ids, o)
	if err != nil {
		t.Fatalf("parallel profiled run: %v", err)
	}
	seq, err := RunMany(ids, Options{Scale: 0.05, Seed: 1, Samples: 8, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if par[i].ID != seq[i].ID {
			t.Fatalf("result order diverged: %s != %s", par[i].ID, seq[i].ID)
		}
		if got, want := par[i].Table.String(), seq[i].Table.String(); got != want {
			t.Fatalf("%s: parallel profiled output diverged:\n%s\n---\n%s", id, got, want)
		}
		profiled := id == "fig12a" || id == "fig15"
		if (par[i].Profile != nil) != profiled {
			t.Fatalf("%s: Profile presence = %v, want %v", id, par[i].Profile != nil, profiled)
		}
	}
	for _, id := range []string{"fig12a", "fig15"} {
		for _, ext := range []string{".cpu.pb.gz", ".heap.pb.gz"} {
			if _, err := os.Stat(filepath.Join(dir, id+ext)); err != nil {
				t.Fatalf("missing profile: %v", err)
			}
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "fig01.cpu.pb.gz")); !os.IsNotExist(err) {
		t.Fatalf("unselected figure was profiled: %v", err)
	}
}

func TestProfileWants(t *testing.T) {
	cases := []struct {
		p    ProfileOptions
		id   string
		want bool
	}{
		{ProfileOptions{}, "fig01", false},
		{ProfileOptions{CPU: true}, "fig01", true},
		{ProfileOptions{Heap: true}, "fig01", true},
		{ProfileOptions{CPU: true, Only: []string{"fig02"}}, "fig01", false},
		{ProfileOptions{CPU: true, Only: []string{"fig02", "fig01"}}, "fig01", true},
		{ProfileOptions{Only: []string{"fig01"}}, "fig01", false}, // no mode selected
	}
	for i, c := range cases {
		if got := c.p.wants(c.id); got != c.want {
			t.Errorf("case %d: wants(%q) = %v, want %v (%+v)", i, c.id, got, c.want, c.p)
		}
	}
}

func TestProfileSummaryString(t *testing.T) {
	var nilSum *ProfileSummary
	if nilSum.String() != "" {
		t.Fatal("nil summary renders text")
	}
	sum := &ProfileSummary{
		CPUFile: "p/fig01.cpu.pb.gz",
		CPU: []profiling.Cost{
			{Subsystem: "internal/xenstore", Value: 100, Percent: 62.5},
			{Subsystem: "runtime", Value: 60, Percent: 37.5},
		},
		HeapFile: "p/fig01.heap.pb.gz",
	}
	out := sum.String()
	for _, want := range []string{"profile cpu:", "62.5% internal/xenstore", "37.5% runtime", "fig01.cpu.pb.gz", "profile heap: (no samples)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}
