package experiments

import (
	"fmt"
	"testing"
	"time"
)

// TestParallelMatchesSequential is the engine's core guarantee: a
// parallel replay renders byte-identical tables to a sequential one,
// because every series owns its clock, host and RNG and rows are
// assembled in a fixed order after the pool drains.
func TestParallelMatchesSequential(t *testing.T) {
	ids := []string{"fig05", "fig09"}
	seq := Options{Scale: 0.06, Seed: 7, Samples: 6, Parallel: 1}
	par := seq
	par.Parallel = 4

	want, err := RunMany(ids, seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMany(ids, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("result count %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("order: got %s at %d, want %s", got[i].ID, i, want[i].ID)
		}
		ws, gs := want[i].Table.String(), got[i].Table.String()
		if ws != gs {
			t.Errorf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				want[i].ID, ws, gs)
		}
		if got[i].VirtualMS != want[i].VirtualMS {
			t.Errorf("%s: virtual time %v != %v", want[i].ID, got[i].VirtualMS, want[i].VirtualMS)
		}
	}
}

// TestRunManyRecordsWall checks the per-figure bookkeeping RunMany
// adds on top of Run.
func TestRunManyRecordsWall(t *testing.T) {
	res, err := RunMany([]string{"fig01"}, Options{Scale: 0.05, Seed: 3, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Wall <= 0 {
		t.Errorf("Wall = %v, want > 0", res[0].Wall)
	}
	if res[0].Allocs == 0 {
		t.Errorf("Allocs = 0 on a sequential run, want > 0")
	}
}

// TestSampledAllocsMatchSequential holds the parallel-run allocation
// estimate to the sequential measurement. The workload is a fixed
// homogeneous fan-out (four copies of the same figure), where the
// sampler's CPU-weighted attribution has no cross-figure
// allocation-density skew to absorb; per-figure estimates must land
// within 10% of the exact sequential count even when the host
// time-slices all four figures over a single core. The scale keeps
// each figure around 300k+ allocated objects: attribution noise from
// intervals spanning a scheduler switch is roughly constant in
// absolute objects, so the tolerance is only meaningful against
// enough mass (the xenstore node pool, snapshot-codec and resolve
// -cache work cut per-op allocations several fold, which is what
// pushed the scale up from 0.25 and then again from 0.8).
func TestSampledAllocsMatchSequential(t *testing.T) {
	ids := []string{"fig05", "fig05", "fig05", "fig05"}
	seq := Options{Scale: 1.6, Seed: 5, Samples: 6, Parallel: 1}
	par := seq
	par.Parallel = 4

	want, err := RunMany(ids, seq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMany(ids, par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		exact, sampled := float64(want[i].Allocs), float64(got[i].Allocs)
		if exact == 0 {
			t.Fatalf("figure %d: sequential run recorded 0 allocations", i)
		}
		if diff := (sampled - exact) / exact; diff > 0.10 || diff < -0.10 {
			t.Errorf("figure %d: sampled allocs %.0f vs sequential %.0f (%.1f%% off, budget ±10%%)",
				i, sampled, exact, diff*100)
		}
	}
}

// TestRunSeriesErrorDeterminism: the pool reports the lowest-indexed
// failure no matter which worker hits its error first.
func TestRunSeriesErrorDeterminism(t *testing.T) {
	o := Options{Parallel: 4}
	err := o.runSeries(8, func(i int) error {
		if i%2 == 1 {
			time.Sleep(time.Duration(8-i) * time.Millisecond)
			return errAt(i)
		}
		return nil
	})
	if err == nil || err.Error() != "job 1" {
		t.Fatalf("err = %v, want job 1", err)
	}
}

type errAt int

func (e errAt) Error() string { return fmt.Sprintf("job %d", int(e)) }

// TestSamplePointsEdgeCases pins the fixed sampling behaviour: the
// final point appears exactly once, degenerate n is safe, and
// un-normalized options fall back to the default sample count.
func TestSamplePointsEdgeCases(t *testing.T) {
	// n an exact multiple of samples: the loop lands on n itself and
	// the tail guard must not duplicate it.
	o := Options{Samples: 5}
	pts := o.samplePoints(100)
	if pts[len(pts)-1] != 100 {
		t.Fatalf("last point = %d, want 100", pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] == pts[i-1] {
			t.Fatalf("duplicate point %d in %v", pts[i], pts)
		}
	}
	// n not a multiple: the guard appends n once.
	pts = o.samplePoints(103)
	if pts[len(pts)-1] != 103 || pts[len(pts)-2] == 103 {
		t.Fatalf("points = %v, want single trailing 103", pts)
	}
	// Samples > n: every count 1..n.
	pts = o.samplePoints(3)
	if len(pts) != 3 || pts[0] != 1 || pts[2] != 3 {
		t.Fatalf("small points = %v", pts)
	}
	// Degenerate n must not panic or emit points.
	if pts := o.samplePoints(0); len(pts) != 0 {
		t.Fatalf("n=0 points = %v, want none", pts)
	}
	if pts := o.samplePoints(-5); len(pts) != 0 {
		t.Fatalf("n<0 points = %v, want none", pts)
	}
	// Un-normalized options (Samples == 0) fall back to the default
	// rather than dividing by zero.
	var zero Options
	pts = zero.samplePoints(100)
	if len(pts) != defaultSamples || pts[len(pts)-1] != 100 {
		t.Fatalf("unnormalized points = %v", pts)
	}
}
