package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/toolstack"
	"lightvm/internal/traffic"
)

func init() {
	register("ext-overload", extOverload)
}

// overloadModes: the stock toolstack first — the paper's starting
// point is exactly the control plane that tips over soonest.
var overloadModes = []traffic.Mode{traffic.VMPerRequestXL, traffic.VMPerRequest}

// overloadMults sweeps offered load through and past the knee.
var overloadMults = []float64{0.5, 1, 2, 3}

// stormRate is the client retry probability when the storm is armed:
// 90% of rejected or timed-out requests come back after a backoff.
const stormRate = 0.9

// extOverload — metastable overload and its elimination (extension).
// Each cell drives one serving host open-loop through a three-phase
// timeline: pre-burst at 70% of the mode's calibrated capacity, a
// burst at mult× capacity, then back to 70% — the classic trigger
// shape for metastable failure. With the retry storm armed and the
// defenses off, the burst pushes the control-plane backlog past the
// client deadline; every late or shed request re-arrives after
// backoff, and the retry feedback sustains the collapse after the
// trigger ends: post-burst goodput stays at a fraction of pre-burst at
// the SAME fresh offered load. With the defenses on (AIMD admission on
// observed latency, a Finagle-style retry budget, two-priority
// shedding, brownout serving), the loop is broken: the limiter caps
// the backlog below the deadline so served work is good work, and the
// budget caps the retry inflow below the spare capacity.
//
// Goodput is accounted per phase as in-deadline responses over fresh
// offered requests, so the pre/post ratio compares equal offered
// loads; the burst column shows the trigger. Timescales are derived
// from each mode's measured capacity (EstimateCapacity), so "2×
// capacity" stresses xl and chaos identically in relative terms.
func extOverload(o Options) (Result, error) {
	hostsSim := o.scaled(4, 1)
	// The floor keeps the trigger decisive at test scales: the burst
	// must overshoot the deadline by a multiple, not a margin —
	// 0.25×640 arrivals at 2× capacity add ~80 per-request units of
	// backlog against a 30-unit deadline.
	reqPerHost := o.scaled(1600, 640)
	const preFrac, burstFrac = 0.30, 0.25

	// Calibrated per-request capacity per mode (deterministic — a
	// scratch host on its own clock).
	caps := make([]float64, len(overloadModes))
	for i, m := range overloadModes {
		c, err := traffic.EstimateCapacity(m, guest.Daytime())
		if err != nil {
			return Result{}, fmt.Errorf("ext-overload: calibrate %s: %w", m, err)
		}
		caps[i] = c
	}

	type cell struct{ mi, li, si, di int }
	var cells []cell
	for mi := range overloadModes {
		for li := range overloadMults {
			for _, si := range []int{0, 1} {
				for _, di := range []int{0, 1} {
					cells = append(cells, cell{mi, li, si, di})
				}
			}
		}
	}
	jobs := len(cells) * hostsSim
	stats := make([]*traffic.Stats, jobs)
	virtMS := make([]float64, jobs)

	// Per-mode timescales, all multiples of the measured per-request
	// cost: the client deadline is 30 requests of backlog, the static
	// admission wall 3 deadlines out.
	perReq := func(mi int) time.Duration {
		return time.Duration(float64(time.Second) / caps[mi])
	}
	bounds := func(mi, li int) (t1, t2 time.Duration) {
		c := caps[mi]
		t1 = time.Duration(preFrac * float64(reqPerHost) / (0.7 * c) * float64(time.Second))
		t2 = t1 + time.Duration(burstFrac*float64(reqPerHost)/(overloadMults[li]*c)*float64(time.Second))
		return
	}

	err := o.runSeries(jobs, func(j int) error {
		ci, host := j/hostsSim, j%hostsSim
		c := cells[ci]
		cap := caps[c.mi]
		timeout := 30 * perReq(c.mi)
		t1, t2 := bounds(c.mi, c.li)
		base := o.Seed + uint64(ci)*7919
		hseed := base + uint64(host)*104729 + 1

		var plan faults.Plan
		if c.si == 1 {
			plan = faults.Plan{Rate: stormRate, Kinds: []faults.Kind{faults.KindRetryStorm}}
		}
		var def traffic.Defense
		if c.di == 1 {
			def = traffic.Defense{
				AdaptiveAdmit: true,
				LatencyTarget: timeout / 3,
				RetryBudget:   0.2,
				PriorityShed:  true,
				Brownout:      true,
			}
		}
		st, h, err := traffic.Serve(traffic.Config{
			Mode: overloadModes[c.mi],
			Seed: hseed,
			Arrivals: traffic.NewPhased(hseed, []traffic.PhaseRate{
				{Rate: 0.7 * cap, Until: t1},
				{Rate: overloadMults[c.li] * cap, Until: t2},
				{Rate: 0.7 * cap},
			}),
			Requests:     reqPerHost,
			MaxBacklog:   3 * timeout,
			Timeout:      timeout,
			RetryBackoff: timeout / 4,
			FaultPlan:    plan,
			Defense:      def,
			PhaseBounds:  []time.Duration{t1, t2},
		})
		if err != nil {
			return fmt.Errorf("ext-overload %s/x%.1f/storm%d/def%d host %d: %w",
				overloadModes[c.mi], overloadMults[c.li], c.si, c.di, host, err)
		}
		if v := toolstack.Fsck(h.Env); len(v) > 0 {
			return fmt.Errorf("ext-overload %s/x%.1f/storm%d/def%d host %d: fsck: %v",
				overloadModes[c.mi], overloadMults[c.li], c.si, c.di, host, v)
		}
		stats[j] = st
		virtMS[j] = h.Clock.Now().Milliseconds()
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	// Merge per-host stats per cell in fixed host order.
	merged := make([]*traffic.Stats, len(cells))
	for ci := range cells {
		m := &traffic.Stats{Mode: overloadModes[cells[ci].mi]}
		for host := 0; host < hostsSim; host++ {
			m.Merge(stats[ci*hostsSim+host])
		}
		merged[ci] = m
	}

	t := metrics.NewTable("Extension: overload metastability — retry storms sustain collapse without defenses; AIMD + retry budgets + brownout recover",
		"mode", "mult", "storm", "defense",
		"pre_good_pct", "burst_good_pct", "post_good_pct", "post_pre_ratio",
		"p99_ms", "reject_pct", "retries", "brownout_ms")
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	goodFrac := func(p traffic.PhaseStats) float64 {
		if p.Fresh == 0 {
			return 0
		}
		return float64(p.Good) / float64(p.Fresh)
	}
	type key struct{ mi, li, si, di int }
	ratios := make(map[key]float64, len(cells))
	p99s := make(map[key]time.Duration, len(cells))
	for ci, c := range cells {
		m := merged[ci]
		pre, burst, post := goodFrac(m.Phases[0]), goodFrac(m.Phases[1]), goodFrac(m.Phases[2])
		ratio := 0.0
		if pre > 0 {
			ratio = post / pre
		}
		k := key{c.mi, c.li, c.si, c.di}
		ratios[k] = ratio
		p99s[k] = m.Latency.P99()
		t.AddRow(float64(c.mi), overloadMults[c.li], float64(c.si), float64(c.di),
			100*pre, 100*burst, 100*post, ratio,
			ms(m.Latency.P99()), 100*m.RejectRate(),
			float64(m.Retries), ms(m.BrownoutTime))
	}

	// Headline gates on the storm-armed past-the-knee cells: the
	// defenses-off plane stays collapsed after the burst ends, the
	// defended plane recovers at equal offered load with a bounded tail.
	for mi := range overloadModes {
		timeout := 30 * perReq(mi)
		for li, mult := range overloadMults {
			if mult < 2 {
				continue
			}
			off := ratios[key{mi, li, 1, 0}]
			on := ratios[key{mi, li, 1, 1}]
			if off >= 0.5 {
				return Result{}, fmt.Errorf(
					"ext-overload: no metastable collapse at %s x%.0f storm-on defenses-off: post/pre goodput %.2f, want < 0.5",
					overloadModes[mi], mult, off)
			}
			if on < 0.95 {
				return Result{}, fmt.Errorf(
					"ext-overload: no recovery at %s x%.0f storm-on defenses-on: post/pre goodput %.2f, want >= 0.95",
					overloadModes[mi], mult, on)
			}
			if p := p99s[key{mi, li, 1, 1}]; p > 2*timeout {
				return Result{}, fmt.Errorf(
					"ext-overload: defended tail unbounded at %s x%.0f: p99 %v past 2x the %v deadline",
					overloadModes[mi], mult, p, timeout)
			}
		}
	}

	t.Note("modes: 0=vm-xl (stock toolstack) 1=vm (chaos+xenstore); capacity calibrated per mode: xl %.1f req/s, chaos %.1f req/s",
		caps[0], caps[1])
	t.Note("phases: 30%% of requests at 0.7x capacity, 25%% at mult x capacity (the trigger), 45%% back at 0.7x; goodput = in-deadline responses / fresh offered per phase")
	t.Note("storm: %.0f%% of rejected/timed-out requests re-arrive after exponential backoff (max 4 attempts); defenses: AIMD admission + 0.2 retry budget + priority shed + brownout",
		100*float64(stormRate))
	t.Note("fleet sample: %d hosts/cell, %d fresh requests/host; deadline = 30x per-request cost, static admission wall 3 deadlines",
		hostsSim, reqPerHost)
	return Result{
		ID:        "ext-overload",
		Paper:     "extension: retry storms make control-plane overload metastable; adaptive admission + retry budgets eliminate it",
		Table:     t,
		VirtualMS: maxOf(virtMS),
		Serving:   summarizeServing(merged),
	}, nil
}
