package experiments

import (
	"bytes"
	"testing"
)

// Cross-shard determinism: Options.Shards selects how many engine
// workers execute a sharded-cluster figure, and must never change what
// the figure reports. The check runs each figure at 1, 2 and 8 shards
// and demands byte-identical rendered JSON. fig12a/b and ext-gray ride
// along as controls — they run on the single shared clock, so Shards
// must be a no-op for them; ext-cluster is the figure the guarantee is
// actually about.
//
// Allocation counts are the one thing allowed to move (worker
// goroutines, channels and per-worker scratch are real allocations),
// but only within ±10% — a bigger swing means the engine is doing
// materially different work per worker count, which is how schedule
// divergence starts.
var shardDetFigures = []struct {
	id   string
	opts Options
}{
	{"fig12a", Options{Scale: 0.05, Seed: 1, Samples: 8, Parallel: 1}},
	{"fig12b", Options{Scale: 0.05, Seed: 1, Samples: 8, Parallel: 1}},
	{"ext-gray", Options{Scale: 0.05, Seed: 1, Samples: 8, Parallel: 1}},
	{"ext-cluster", Options{Scale: 0.005, Seed: 1, Samples: 8, Parallel: 1}},
	{"ext-serve", Options{Scale: 0.05, Seed: 1, Samples: 8, Parallel: 1}},
}

// renderAt runs one figure pinned at a shard count and returns its
// canonical JSON plus the exact (sequential) allocation count.
func renderAt(t *testing.T, id string, o Options, shards int) ([]byte, uint64) {
	t.Helper()
	o.Shards = shards
	res, err := RunMany([]string{id}, o)
	if err != nil {
		t.Fatalf("%s shards=%d: %v", id, shards, err)
	}
	return encodeGolden(t, res[0]), res[0].Allocs
}

func TestShardDeterminismAcrossWorkerCounts(t *testing.T) {
	for _, f := range shardDetFigures {
		base, baseAllocs := renderAt(t, f.id, f.opts, 1)
		for _, shards := range []int{2, 8} {
			doc, allocs := renderAt(t, f.id, f.opts, shards)
			if !bytes.Equal(doc, base) {
				t.Errorf("%s: output at shards=%d differs from shards=1\n shards=1: %s\n shards=%d: %s",
					f.id, shards, base, shards, doc)
				continue
			}
			lo := baseAllocs - baseAllocs/10
			hi := baseAllocs + baseAllocs/10
			if allocs < lo || allocs > hi {
				t.Errorf("%s: allocs at shards=%d = %d, outside ±10%% of shards=1's %d",
					f.id, shards, allocs, baseAllocs)
			}
		}
	}
}
