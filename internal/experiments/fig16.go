package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/apps"
	"lightvm/internal/core"
	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/netstack"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/tlsterm"
	"lightvm/internal/toolstack"
)

func init() {
	register("fig16a", fig16a)
	register("fig16b", fig16b)
	register("fig16c", fig16c)
}

// fig16a — personal firewalls: 1000 ClickOS firewall VMs on the
// 14-core Xeon, one 10 Mbps iperf client each plus one ping client.
//
// Throughput: each client demands 10 Mbps; the box's forwarding
// capacity saturates as C(N) = Cmax·N/(N+K) (per-VM scheduling
// overhead eats into the ideal linear scaling; Cmax/K calibrated to
// the paper's 3.25 Gbps @500 and 4.0 Gbps @1000).
// Latency: the Xen scheduler round-robins through the active VMs, so
// the ping VM waits ~N timeslices (§7.1's own explanation of the
// 60 ms @1000 figure).
func fig16a(o Options) (Result, error) {
	n := o.scaled(1000, 50)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}

	// Boot the firewall fleet for real (LightVM, ~10 ms each) and run
	// a sample of traffic through each VM's actual rule engine.
	h, err := core.NewHost(sched.Xeon14, o.Seed)
	if err != nil {
		return Result{}, err
	}
	if err := h.EnsureFlavor(guest.ClickOSFirewall(), toolstack.ModeLightVM); err != nil {
		return Result{}, err
	}
	drv := h.Driver(toolstack.ModeLightVM)
	t := metrics.NewTable("Figure 16a: personal firewalls — total throughput and ping RTT",
		"n", "throughput_gbps", "rtt_ms")
	const cmaxGbps, kSat = 5.2, 300.0
	var fwDenied uint64
	for i := 1; i <= n; i++ {
		if err := h.Replenish(); err != nil {
			return Result{}, err
		}
		if _, err := drv.Create(fmt.Sprintf("fw%d", i), guest.ClickOSFirewall()); err != nil {
			return Result{}, err
		}
		// Each subscriber's firewall filters its own flow.
		fw, err := apps.NewPersonalFirewall(fmt.Sprintf("10.%d.%d.0/24", i/250, i%250), []string{"203.0.113.0/24"})
		if err != nil {
			return Result{}, err
		}
		src, _ := apps.ParseIPv4(fmt.Sprintf("10.%d.%d.7", i/250, i%250))
		dst, _ := apps.ParseIPv4("198.51.100.10")
		bad, _ := apps.ParseIPv4("203.0.113.66")
		if fw.Filter(src, dst, 443) != apps.Allow {
			return Result{}, fmt.Errorf("fig16a: subscriber flow denied")
		}
		if fw.Filter(bad, src, 80) != apps.Deny {
			return Result{}, fmt.Errorf("fig16a: blocklist flow allowed")
		}
		fwDenied += fw.Denied

		if wanted[i] {
			fi := float64(i)
			demand := 10 * fi / 1000 // Gbps
			capacity := cmaxGbps * fi / (fi + kSat)
			tput := demand
			if capacity < tput {
				tput = capacity
			}
			rtt := 0.2 + fi*float64(costs.TimesliceRR)/float64(time.Millisecond)
			t.AddRow(fi, tput, rtt)
		}
	}
	t.Note("paper: linear to 2.5Gbps @250 clients; 6.5Mbps/user @500 (3.25G), 4Mbps/user @1000 (4.0G); RTT ~60ms @1000")
	t.Note("rule engine exercised: %d blocklist packets denied across the fleet", fwDenied)
	return Result{ID: "fig16a", Paper: "one machine can firewall a full LTE cell (3.3 Gbps max)", Table: t, VirtualMS: h.Clock.Now().Milliseconds()}, nil
}

// fig16b — just-in-time service instantiation: each client sends one
// ping; the first packet boots a fresh VM which then answers. The
// bridge queues packets for still-booting VMs; past its backlog limit
// it drops (mostly ARP), and those clients pay a 1 s retry — the long
// tail at the 10 ms arrival rate.
func fig16b(o Options) (Result, error) {
	clients := o.scaled(1000, 50)
	t := metrics.NewTable("Figure 16b: JIT instantiation — ping RTT CDF per arrival rate",
		"percentile", "rtt_10ms", "rtt_25ms", "rtt_50ms", "rtt_100ms")
	rates := []time.Duration{10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond}
	cdfs := make([][]metrics.CDFPoint, len(rates))
	virtMS := make([]float64, len(rates))
	// Each arrival rate replays on its own host/clock — run them as
	// parallel series.
	err := o.runSeries(len(rates), func(ri int) error {
		inter := rates[ri]
		h, err := core.NewHost(sched.Xeon14, o.Seed+uint64(ri))
		if err != nil {
			return err
		}
		// High arrival rates keep the shell pool warm (the daemon gets
		// scheduled often enough); at low rates the pool covers demand
		// trivially. Either way LightVM boots the service VM.
		if err := h.EnsureFlavor(guest.ClickOSFirewall(), toolstack.ModeLightVM); err != nil {
			return err
		}
		drv := h.Driver(toolstack.ModeLightVM)
		// The toolstack's Dom0 work serializes across requests, but
		// the guest-side boot runs on the 13 guest cores in parallel.
		// We therefore create VMs with their boot work stripped and
		// account the ClickOS boot (≈8 ms) per client on top.
		img := guest.ClickOSFirewall()
		bootWork := img.BootWork
		img.BootWork = time.Microsecond
		var rtts metrics.Series
		var pending []*toolstack.VM
		for k := 0; k < clients; k++ {
			reqArrive := sim.Time(k) * sim.Time(inter)
			if h.Clock.Now() < reqArrive {
				// The chaos daemon refills the shell pool in the idle
				// gap between arrivals; under sustained 10 ms arrivals
				// there is no gap, the pool drains, and creations fall
				// back to inline prepares.
				if err := h.Replenish(); err != nil {
					return err
				}
				h.Clock.AdvanceTo(reqArrive)
			}
			vm, err := drv.Create(fmt.Sprintf("jit%d-%d", ri, k), img)
			if err != nil {
				return err
			}
			// Ready once the (parallel) guest boot completes.
			ready := h.Clock.Now().Add(bootWork)
			rtt := ready.Sub(reqArrive) + 2*costs.BridgeForward + costs.PingProcess
			// At the 10 ms arrival rate the Linux bridge is overloaded
			// by the churn's broadcast (ARP) traffic and drops a small
			// fraction of packets (§7.2); those clients pay the ARP
			// retry timeout — the long tail in the CDF.
			ratePerSec := float64(time.Second) / float64(inter)
			if over := ratePerSec - 60; over > 0 {
				pDrop := 0.08 * over / ratePerSec
				if h.RNG.Float64() < pDrop {
					rtt += time.Second
				}
			}
			rtts.AddDuration(rtt)
			// Idle services are torn down 2s after their client goes
			// quiet — off the arrival path on a real host, so
			// destruction happens after the measurement window here
			// (the single-threaded clock cannot overlap it with
			// arrivals). 1000 firewall VMs fit in ~8 GB.
			pending = append(pending, vm)
		}
		for _, vm := range pending {
			if err := drv.Destroy(vm); err != nil {
				return err
			}
		}
		cdfs[ri] = rtts.CDF()
		virtMS[ri] = h.Clock.Now().Milliseconds()
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	// Emit aligned percentile rows.
	for p := 1; p <= 100; p++ {
		row := []float64{float64(p) / 100}
		for _, cdf := range cdfs {
			idx := (p*len(cdf))/100 - 1
			if idx < 0 {
				idx = 0
			}
			row = append(row, cdf[idx].Value)
		}
		t.AddRow(row[0], row[1], row[2], row[3], row[4])
	}
	t.Note("paper @25ms inter-arrival: median 13ms, p90 20ms; @10ms the bridge drops ARPs and some pings time out (long tail)")
	return Result{ID: "fig16b", Paper: "JIT VM boots answer pings in ~13ms median; overload only at 10ms arrivals", Table: t, VirtualMS: maxOf(virtMS)}, nil
}

// fig16c — TLS termination throughput for bare-metal processes, Tinyx
// VMs and axtls/lwip unikernels, up to 1000 instances on 14 cores.
func fig16c(o Options) (Result, error) {
	n := o.scaled(1000, 50)
	points := o.samplePoints(n)
	// Exercise the real handshake machine once per stack so the cost
	// model and the state machine stay in agreement.
	h, err := core.NewHost(sched.Xeon14, o.Seed)
	if err != nil {
		return Result{}, err
	}
	linux := tlsterm.New(h.Clock, netstack.LinuxTCP)
	lwip := tlsterm.New(h.Clock, netstack.Lwip)
	costLinux, err := linux.ServeRequest()
	if err != nil {
		return Result{}, err
	}
	costLwip, err := lwip.ServeRequest()
	if err != nil {
		return Result{}, err
	}

	cores := float64(sched.Xeon14.Cores - sched.Xeon14.Dom0Cores)
	t := metrics.NewTable("Figure 16c: TLS termination throughput (Kreq/s) vs #instances",
		"n", "bare_metal_krps", "tinyx_krps", "unikernel_krps")
	tput := func(nInst int, perReq time.Duration, virtOverhead float64) float64 {
		perInstance := 1 / perReq.Seconds() / (1 + virtOverhead)
		capacity := cores / perReq.Seconds() / (1 + virtOverhead)
		v := float64(nInst) * perInstance
		if v > capacity {
			v = capacity
		}
		return v / 1000
	}
	for _, p := range points {
		t.AddRow(float64(p),
			tput(p, costLinux, 0),    // bare metal
			tput(p, costLinux, 0.03), // Tinyx: tiny virtualization tax
			tput(p, costLwip, 0.03))  // unikernel: lwip factor dominates
	}
	t.Note("paper: ~1400 req/s plateau for bare metal and Tinyx (1024-bit RSA), unikernel ~1/5 of that (lwip)")
	return Result{ID: "fig16c", Paper: "Tinyx ≈ bare metal ≈1400 req/s; unikernel ~20% of that", Table: t}, nil
}
