package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-ukvm", extUkvm)
}

// extUkvm — §9 "Generality": a ukvm/Solo5-style unikernel monitor on
// KVM ("10 ms boot times") against LightVM across a 1000-guest sweep.
// Both avoid the XenStore; the difference is that ukvm pays a monitor
// fork/exec plus setup per boot while the split toolstack amortizes
// prepare work off the creation path.
func extUkvm(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	img := guest.Daytime()

	sweep := func(useUkvm bool) (map[int]float64, float64, error) {
		h, err := core.NewHost(sched.Xeon4, o.Seed)
		if err != nil {
			return nil, 0, err
		}
		var drv toolstack.Driver
		if useUkvm {
			drv = toolstack.NewUkvm(h.Env)
		} else {
			if err := h.EnsureFlavor(img, toolstack.ModeLightVM); err != nil {
				return nil, 0, err
			}
			drv = h.Driver(toolstack.ModeLightVM)
		}
		out := map[int]float64{}
		for i := 1; i <= n; i++ {
			if !useUkvm {
				if err := h.Replenish(); err != nil {
					return nil, 0, err
				}
			}
			vm, err := drv.Create(fmt.Sprintf("g%d", i), img)
			if err != nil {
				return nil, 0, err
			}
			if wanted[i] {
				out[i] = float64(vm.CreateTime+vm.BootTime) / float64(time.Millisecond)
			}
		}
		return out, h.Clock.Now().Milliseconds(), nil
	}
	// Both monitors sweep on independent hosts — run the pair in
	// parallel.
	cols := make([]map[int]float64, 2)
	virtMS := make([]float64, 2)
	err := o.runSeries(2, func(i int) error {
		m, v, err := sweep(i == 0)
		cols[i], virtMS[i] = m, v
		return err
	})
	if err != nil {
		return Result{}, err
	}
	ukvm, lightvm := cols[0], cols[1]
	t := metrics.NewTable("Extension: ukvm-style monitor vs LightVM (daytime unikernel)",
		"n", "ukvm_ms", "lightvm_ms")
	for _, p := range points {
		t.AddRow(float64(p), ukvm[p], lightvm[p])
	}
	t.Note("§9: 'ukvm implements a specialized unikernel monitor on top of KVM ... to achieve 10 ms boot times'")
	t.Note("both scale flat (no store); ukvm pays a per-boot monitor fork/exec that the split toolstack amortizes away")
	return Result{ID: "ext-ukvm", Paper: "§9: ukvm ≈10ms boots; LightVM still faster via the prepare phase", Table: t, VirtualMS: maxOf(virtMS)}, nil
}
