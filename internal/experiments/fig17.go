package experiments

import (
	"fmt"
	"math"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/costs"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/minipy"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func init() {
	register("fig17", fig17)
	register("fig18", fig18)
}

// computeRun is one lightweight-compute-service simulation (§7.4):
// 1000 python programs arrive every 250 ms; each spawns a Minipython
// VM that computes an approximation of e (~0.8 s of CPU) on one of
// three worker cores, then shuts down. Requests arrive slightly
// faster than the three cores can serve, so backlog builds.
type computeRun struct {
	// CompletionMS[k] is the service time of the k-th request.
	CompletionMS []float64
	// Concurrent[k] is the number of live VMs when request k arrives.
	Concurrent []int
	// VirtMS is the run's final virtual time in milliseconds.
	VirtMS float64
}

// jobExtraWork is the per-job worker-core overhead a store-connected
// guest pays on top of the computation: its frontends chat with the
// XenStore while booting and the shutdown handshake goes through the
// store — and every operation slows down with the number of connected
// guests. noxs guests skip all of it. This is the mechanism behind
// the paper's observation that "the work reduction provided by noxs
// allows other VMs to do useful work" (§7.4).
func jobExtraWork(mode toolstack.Mode, running int) time.Duration {
	if !mode.UsesStore() {
		return 0
	}
	const bootStoreOps = 60
	perOp := 40*time.Microsecond + time.Duration(running)*costs.XSPerConnection
	return bootStoreOps*perOp + costs.SuspendHandshakeXS
}

// runComputeService executes the fig17/fig18 workload for one mode.
func runComputeService(mode toolstack.Mode, requests int, seed uint64) (*computeRun, error) {
	h, err := core.NewHost(sched.Xeon4, seed)
	if err != nil {
		return nil, err
	}
	if err := h.EnsureFlavor(guest.Minipython(), mode); err != nil {
		return nil, err
	}
	drv := h.Driver(mode)
	ps := sched.NewPS(h.Clock)
	out := &computeRun{
		CompletionMS: make([]float64, requests),
		Concurrent:   make([]int, requests),
	}

	// Verify the payload once for real: the job is the paper's
	// approximation of e.
	res, err := minipy.Run(minipy.ApproxEProgram, 0)
	if err != nil {
		return nil, fmt.Errorf("fig17: payload: %w", err)
	}
	if v, ok := res.Globals["result"].(float64); !ok || math.Abs(v-math.E) > 1e-6 {
		return nil, fmt.Errorf("fig17: payload returned %v, want e", res.Globals["result"])
	}

	interArrival := 250 * time.Millisecond
	var doneVMs []*toolstack.VM
	live := 0
	for k := 0; k < requests; k++ {
		arrive := sim.Time(k) * sim.Time(interArrival)
		if h.Clock.Now() < arrive {
			h.Clock.AdvanceTo(arrive)
		}
		// Tear down VMs whose jobs completed (deferred out of the
		// completion events so toolstack work never runs inside the
		// event queue).
		for _, vm := range doneVMs {
			if err := drv.Destroy(vm); err != nil {
				return nil, err
			}
		}
		doneVMs = doneVMs[:0]
		out.Concurrent[k] = live

		if mode.UsesSplit() {
			if err := h.Replenish(); err != nil {
				return nil, err
			}
		}
		vm, err := drv.Create(fmt.Sprintf("job%d", k), guest.Minipython())
		if err != nil {
			return nil, err
		}
		live++
		work := costs.MinipyEApprox + jobExtraWork(mode, live)
		k, vm, arrive := k, vm, arrive
		ps.Submit(vm.Core, work, func(finish sim.Time) {
			out.CompletionMS[k] = float64(finish.Sub(arrive)) / float64(time.Millisecond)
			doneVMs = append(doneVMs, vm)
			live--
		})
	}
	ps.Drain()
	for _, vm := range doneVMs {
		if err := drv.Destroy(vm); err != nil {
			return nil, err
		}
	}
	out.VirtMS = h.Clock.Now().Milliseconds()
	return out, nil
}

// computePair runs the fig17/fig18 workload for chaos[XS] and LightVM
// on independent timelines, in parallel when the options allow it.
func computePair(o Options, n int) (xs, lv *computeRun, err error) {
	modes := []toolstack.Mode{toolstack.ModeChaosXS, toolstack.ModeLightVM}
	runs := make([]*computeRun, len(modes))
	err = o.runSeries(len(modes), func(i int) error {
		r, err := runComputeService(modes[i], n, o.Seed)
		runs[i] = r
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return runs[0], runs[1], nil
}

// fig17 — service time of the nth compute request on the overloaded
// machine, chaos[XS] vs LightVM.
func fig17(o Options) (Result, error) {
	n := o.scaled(1000, 40)
	xs, lv, err := computePair(o, n)
	if err != nil {
		return Result{}, err
	}
	t := metrics.NewTable("Figure 17: compute-service time for the nth request (overloaded host)",
		"n", "chaos_xs_s", "lightvm_s")
	for _, p := range o.samplePoints(n) {
		t.AddRow(float64(p), xs.CompletionMS[p-1]/1000, lv.CompletionMS[p-1]/1000)
	}
	t.Note("paper: noxs improves completion times ~5× when 100-200 VMs are backlogged; jobs take ~0.8s, arrivals every 250ms on 3 worker cores")
	return Result{ID: "fig17", Paper: "LightVM completes requests ~5× faster under backlog", Table: t, VirtualMS: maxOf([]float64{xs.VirtMS, lv.VirtMS})}, nil
}

// fig18 — number of concurrently running VMs over time for the same
// workload.
func fig18(o Options) (Result, error) {
	n := o.scaled(1000, 40)
	xs, lv, err := computePair(o, n)
	if err != nil {
		return Result{}, err
	}
	t := metrics.NewTable("Figure 18: concurrently running VMs over time",
		"t_s", "chaos_xs_vms", "lightvm_vms")
	for _, p := range o.samplePoints(n) {
		t.AddRow(float64(p-1)*0.25, float64(xs.Concurrent[p-1]), float64(lv.Concurrent[p-1]))
	}
	t.Note("paper: chaos[XS] backlog climbs toward ~140 concurrent VMs; LightVM stays far lower")
	return Result{ID: "fig18", Paper: "noxs keeps the VM backlog small under overload", Table: t, VirtualMS: maxOf([]float64{xs.VirtMS, lv.VirtMS})}, nil
}
