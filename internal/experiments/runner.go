package experiments

import (
	"runtime"
	"sync"
	"time"
)

// The parallel experiment engine. A full `-exp all` replay runs ~24
// independent figures, each of which builds its own sim.Clock, host
// and stores — an embarrassingly parallel workload that the original
// harness ran strictly sequentially. RunMany fans the figures out over
// a bounded worker pool and still emits results in input order, so the
// rendered output is byte-identical to a sequential run. The same pool
// primitive (runSeries) parallelizes *within* multi-series figures:
// fig09's five toolstacks, fig04's guest classes, fig13's migration
// drivers and so on each own an isolated timeline, so their sweeps run
// concurrently without perturbing a single virtual-time result.

// runSeries executes jobs 0..n-1 on up to o.workers() goroutines and
// returns the lowest-indexed error (deterministic error reporting).
// With Parallel == 1 (or a single job) it degrades to a plain loop so
// sequential runs stay exactly sequential.
func (o Options) runSeries(n int, job func(i int) error) error {
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunMany executes the given experiments on a bounded worker pool
// (Options.Parallel workers; 0 = GOMAXPROCS) and returns their results
// in input order. Per-figure wall time is recorded on each Result;
// allocation counts are recorded on sequential runs, where the global
// counter is attributable to a single figure.
func RunMany(ids []string, o Options) ([]Result, error) {
	o = o.normalize()
	sequential := o.workers() == 1
	out := make([]Result, len(ids))
	err := o.runSeries(len(ids), func(i int) error {
		var m0 runtime.MemStats
		if sequential {
			runtime.ReadMemStats(&m0)
		}
		start := time.Now()
		res, err := Run(ids[i], o)
		if err != nil {
			return err
		}
		res.Wall = time.Since(start)
		if sequential {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			res.Allocs = m1.Mallocs - m0.Mallocs
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll runs every registered experiment in registry (sorted) order.
func RunAll(o Options) ([]Result, error) {
	return RunMany(IDs(), o)
}
