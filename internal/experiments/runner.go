package experiments

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// The parallel experiment engine. A full `-exp all` replay runs ~24
// independent figures, each of which builds its own sim.Clock, host
// and stores — an embarrassingly parallel workload that the original
// harness ran strictly sequentially. RunMany fans the figures out over
// a bounded worker pool and still emits results in input order, so the
// rendered output is byte-identical to a sequential run. The same pool
// primitive (runSeries) parallelizes *within* multi-series figures:
// fig09's five toolstacks, fig04's guest classes, fig13's migration
// drivers and so on each own an isolated timeline, so their sweeps run
// concurrently without perturbing a single virtual-time result.

// runSeries executes jobs 0..n-1 on up to o.workers() goroutines and
// returns the lowest-indexed error (deterministic error reporting).
// With Parallel == 1 (or a single job) it degrades to a plain loop so
// sequential runs stay exactly sequential.
func (o Options) runSeries(n int, job func(i int) error) error {
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			// Register this worker with the figure's allocation
			// sampler (parallel RunMany only; see allocSampler).
			if s := o.sampler; s != nil {
				defer s.unbind(s.bind(o.samplerJob))
			}
			for i := range next {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// allocSampler estimates per-job heap allocations on parallel runs.
// Go has no per-goroutine allocation counter, so the sampler reads the
// process-wide object count (/gc/heap/allocs:objects, the same counter
// MemStats.Mallocs reports) on a fine tick and splits each interval's
// delta in proportion to the thread CPU each job's goroutines burned
// during that interval. Every goroutine working for a job — the outer
// figure runner and any workers its nested series pools spawn — pins
// itself to an OS thread and registers the thread's CPU clock, which
// the sampler reads remotely at every flush (see threadCPUClock).
// Per-interval CPU is what makes the estimate robust on few cores:
// when the scheduler time-slices jobs in coarse chunks, most intervals
// see exactly one thread with a non-zero CPU delta, so that job is
// correctly charged everything the interval allocated — including
// allocations made while it was paying GC assist tax, which a
// whole-run CPU split would smear across jobs. Only intervals with
// genuinely concurrent progress fall back to the uniform
// allocations-per-CPU-second assumption. The result is still an
// estimate, but the total is conserved and the unit test holds it to
// 10% of a sequential measurement. Off Linux (or if the kernel lacks
// per-thread clocks) every CPU delta reads 0 and each interval is
// split evenly among the jobs with registered threads.
type allocSampler struct {
	mu      sync.Mutex
	est     []float64
	last    uint64
	sample  []metrics.Sample
	threads map[*samplerThread]struct{}
	weight  []float64 // per-job scratch, reused across flushes
	stop    chan struct{}
	done    chan struct{}
}

// samplerThread is one registered worker thread: which job it serves,
// its remotely readable CPU clock, and the clock value at the last
// flush.
type samplerThread struct {
	job     int
	clock   threadCPUClock
	lastCPU int64
}

func newAllocSampler(n int) *allocSampler {
	s := &allocSampler{
		est:     make([]float64, n),
		sample:  []metrics.Sample{{Name: "/gc/heap/allocs:objects"}},
		threads: make(map[*samplerThread]struct{}),
		weight:  make([]float64, n),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.last = s.read()
	go s.loop()
	return s
}

// read returns the cumulative allocated-object count. Caller holds mu
// (or is the constructor, before the loop starts).
func (s *allocSampler) read() uint64 {
	metrics.Read(s.sample)
	return s.sample[0].Value.Uint64()
}

// flush attributes allocations since the previous sample to jobs in
// proportion to the thread CPU their workers consumed in the interval
// (evenly when no per-thread clock is readable). Caller holds mu.
func (s *allocSampler) flush() {
	cur := s.read()
	delta := cur - s.last
	s.last = cur
	if len(s.threads) == 0 {
		// Pool bookkeeping outside any job; not attributable.
		return
	}
	for i := range s.weight {
		s.weight[i] = 0
	}
	var sum float64
	for th := range s.threads {
		c := th.clock.read()
		if d := c - th.lastCPU; d > 0 {
			s.weight[th.job] += float64(d)
			sum += float64(d)
		}
		th.lastCPU = c
	}
	if delta == 0 {
		return
	}
	if sum > 0 {
		for i, w := range s.weight {
			if w > 0 {
				s.est[i] += float64(delta) * (w / sum)
			}
		}
		return
	}
	// No thread made measurable progress (or no CPU clock): split
	// evenly among the jobs that have workers registered.
	for th := range s.threads {
		s.weight[th.job] = 1
		sum++
	}
	for i, w := range s.weight {
		if w > 0 {
			s.est[i] += float64(delta) * (w / sum)
		}
	}
}

// bind pins the calling goroutine to its OS thread and registers the
// thread as working for job; pair with unbind when the stint ends.
func (s *allocSampler) bind(job int) *samplerThread {
	runtime.LockOSThread()
	th := &samplerThread{job: job, clock: currentThreadClock()}
	th.lastCPU = th.clock.read()
	s.mu.Lock()
	s.flush()
	s.threads[th] = struct{}{}
	s.mu.Unlock()
	return th
}

// unbind settles the thread's final interval, deregisters it and
// unpins the goroutine.
func (s *allocSampler) unbind(th *samplerThread) {
	s.mu.Lock()
	s.flush()
	delete(s.threads, th)
	s.mu.Unlock()
	runtime.UnlockOSThread()
}

func (s *allocSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(500 * time.Microsecond)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			s.flush()
			s.mu.Unlock()
		}
	}
}

// finish stops the sampler and returns the per-job estimates.
func (s *allocSampler) finish() []uint64 {
	close(s.stop)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
	out := make([]uint64, len(s.est))
	for i, e := range s.est {
		out[i] = uint64(e)
	}
	return out
}

// RunMany executes the given experiments on a bounded worker pool
// (Options.Parallel workers; 0 = GOMAXPROCS) and returns their results
// in input order. Per-figure wall time is recorded on each Result.
// Allocation counts are exact on sequential runs (the global counter is
// attributable to a single figure) and a sampling-based estimate on
// parallel runs (see allocSampler).
func RunMany(ids []string, o Options) ([]Result, error) {
	o = o.normalize()
	sequential := o.workers() == 1
	var sampler *allocSampler
	if !sequential {
		sampler = newAllocSampler(len(ids))
		if o.Profile.enabled() {
			// One profiling token: profiled figures take turns (CPU
			// profiling is process-global), unprofiled ones keep the
			// pool busy. See profile.go for the tradeoff.
			o.profGate = make(chan struct{}, 1)
		}
	}
	out := make([]Result, len(ids))
	err := o.runSeries(len(ids), func(i int) (retErr error) {
		var m0 runtime.MemStats
		oj := o
		if sequential {
			runtime.ReadMemStats(&m0)
		} else {
			// Register the figure's own goroutine and tag its Options
			// so nested series pools register their workers too.
			oj.sampler, oj.samplerJob = sampler, i
			defer sampler.unbind(sampler.bind(i))
		}
		start := time.Now()
		res, err := runProfiled(ids[i], oj)
		if err != nil {
			return err
		}
		if res.Wall == 0 {
			// Profiled figures time themselves (captureProfiles), so
			// gate waits and profile parsing don't count as figure time.
			res.Wall = time.Since(start)
		}
		if sequential {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			res.Allocs = m1.Mallocs - m0.Mallocs
		}
		out[i] = res
		return nil
	})
	if sampler != nil {
		ests := sampler.finish()
		for i := range out {
			if out[i].ID != "" {
				out[i].Allocs = ests[i]
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll runs every registered experiment in registry (sorted) order.
func RunAll(o Options) ([]Result, error) {
	return RunMany(IDs(), o)
}
