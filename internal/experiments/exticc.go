package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-icc", extICC)
}

// extICC — the §8 related-work comparison against Intel Clear
// Containers: "an ICC guest is 70MB and boots in 500ms as opposed to a
// Tinyx one which is about 10MB and boots in about 300ms." We boot all
// three LightVM-era options next to an ICC-style guest on the same
// host and report boot time and footprint.
func extICC(o Options) (Result, error) {
	type contender struct {
		label string
		img   guest.Image
		mode  toolstack.Mode
	}
	contenders := []contender{
		{"icc", guest.ClearContainer(), toolstack.ModeChaosXS},
		{"tinyx", guest.TinyxNoop(), toolstack.ModeChaosXS},
		{"unikernel", guest.Daytime(), toolstack.ModeLightVM},
	}
	t := metrics.NewTable("Extension: Intel Clear Containers comparison (§8)",
		"idx", "boot_ms", "image_mb", "runtime_mb")
	names := ""
	for i, c := range contenders {
		h, err := core.NewHost(sched.Xeon4, o.Seed)
		if err != nil {
			return Result{}, err
		}
		if err := h.EnsureFlavor(c.img, c.mode); err != nil {
			return Result{}, err
		}
		vm, err := h.CreateVM(c.mode, c.label, c.img)
		if err != nil {
			return Result{}, err
		}
		t.AddRow(float64(i),
			float64(vm.CreateTime+vm.BootTime)/float64(time.Millisecond),
			float64(c.img.SizeBytes)/(1<<20),
			float64(c.img.MemBytes)/(1<<20))
		if i > 0 {
			names += ", "
		}
		names += fmt.Sprintf("%d=%s", i, c.label)
	}
	t.Note("rows: %s", names)
	t.Note("paper §8: ICC 70MB/500ms vs Tinyx ~10MB/~300ms; LightVM unikernels are far below both")
	return Result{ID: "ext-icc", Paper: "§8: ICC guests are 7× larger and slower to boot than Tinyx", Table: t}, nil
}
