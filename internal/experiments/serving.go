package experiments

import (
	"time"

	"lightvm/internal/traffic"
)

// ServingSummary condenses a serving figure's aggregate traffic
// outcome for the bench report: the tail quantiles and the rejection
// breakdown are what the benchdiff regression gate watches, so a
// change that shifts the serving tail or starts shedding for a new
// reason fails `make bench-compare` even when wall time and allocation
// counts are unchanged.
type ServingSummary struct {
	Arrived          int            `json:"arrived"`
	Served           int            `json:"served"`
	TimedOut         int            `json:"timed_out"`
	Rejected         int            `json:"rejected"`
	RejectedByReason map[string]int `json:"rejected_by_reason,omitempty"`
	Retries          int            `json:"retries,omitempty"`
	P50MS            float64        `json:"p50_ms"`
	P99MS            float64        `json:"p99_ms"`
	P999MS           float64        `json:"p999_ms"`
	RejectPct        float64        `json:"reject_pct"`
	BrownoutMS       float64        `json:"brownout_ms,omitempty"`
	SheddingMS       float64        `json:"shedding_ms,omitempty"`
	StateChanges     int            `json:"state_changes,omitempty"`
}

// summarizeServing folds a figure's per-cell stats into one summary.
func summarizeServing(cells []*traffic.Stats) *ServingSummary {
	var all traffic.Stats
	for _, c := range cells {
		all.Merge(c)
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s := &ServingSummary{
		Arrived:      all.Arrived,
		Served:       all.Served,
		TimedOut:     all.TimedOut,
		Rejected:     all.Rejected,
		Retries:      all.Retries,
		P50MS:        ms(all.Latency.P50()),
		P99MS:        ms(all.Latency.P99()),
		P999MS:       ms(all.Latency.P999()),
		RejectPct:    100 * all.RejectRate(),
		BrownoutMS:   ms(all.BrownoutTime),
		SheddingMS:   ms(all.SheddingTime),
		StateChanges: all.StateChanges,
	}
	byReason := map[string]int{
		traffic.RejectBacklog.String():  all.RejectedBacklog,
		traffic.RejectCapacity.String(): all.RejectedCapacity,
		traffic.RejectOverload.String(): all.RejectedOverload,
		traffic.RejectQuota.String():    all.RejectedQuota,
		traffic.RejectBudget.String():   all.RejectedBudget,
	}
	for k, v := range byReason {
		if v == 0 {
			delete(byReason, k)
		}
	}
	if len(byReason) > 0 {
		s.RejectedByReason = byReason
	}
	return s
}
