package experiments

import (
	"testing"

	"lightvm/internal/metrics"
	"lightvm/internal/toolstack"
)

// TestExtChurnShape checks the crash-consistency asymmetry the table
// exists to show: the store-based xl leaves residue that grows with
// the crash rate and pays for recovery with whole-store scans, while
// the journaled chaos daemon stays flat. Zero post-scrub Fsck
// violations is enforced inside the generator itself — a cell that
// ends dirty fails the run, so a passing table IS the consistency
// proof.
func TestExtChurnShape(t *testing.T) {
	res, err := Run("ext-churn", smallOpts)
	if err != nil {
		t.Fatalf("Run(ext-churn): %v", err)
	}
	tab := runTableOf(t, res)

	rates := col(t, tab, "rate")
	xlRes := col(t, tab, "xl_residue")
	chRes := col(t, tab, "chaos_residue")
	last := len(rates) - 1

	// xl sheds store litter at EVERY rate — even crash-free churn
	// leaves residual entries (§4.2) — while chaos, which keeps no
	// store, stays identically zero across the sweep.
	for i := range rates {
		if xlRes[i] <= 0 {
			t.Fatalf("xl residue zero at rate %v (churn must leave store litter)", rates[i])
		}
		if chRes[i] != 0 {
			t.Fatalf("chaos residue at rate %v: %v (journal replay should leave no store litter)", rates[i], chRes[i])
		}
	}
	// Per-pass recovery cost: xl's whole-store scan grows with the
	// crash rate (more litter per pass); chaos's journal replay stays
	// an order of magnitude below it.
	xlScrub := col(t, tab, "xl_scrub_pass_ms")
	chScrub := col(t, tab, "chaos_scrub_pass_ms")
	if xlScrub[0] <= 0 {
		t.Fatalf("xl rate-0 scrub free: %v (periodic scan must cost)", xlScrub[0])
	}
	if xlScrub[last] <= 2*xlScrub[0] {
		t.Fatalf("xl per-pass scrub did not grow with crash rate: %v → %v", xlScrub[0], xlScrub[last])
	}
	for i := 1; i < len(rates); i++ {
		if chScrub[i] >= xlScrub[i] {
			t.Fatalf("chaos scrub pass (%v ms) not below xl (%v ms) at rate %v", chScrub[i], xlScrub[i], rates[i])
		}
	}
	// Latency: chaos creation is constant-time; xl pays the store.
	xlP50 := col(t, tab, "xl_p50_ms")
	chP99 := col(t, tab, "chaos_p99_ms")
	for i := range rates {
		if chP99[i] >= xlP50[i] {
			t.Fatalf("chaos p99 (%v) not below xl p50 (%v) at rate %v", chP99[i], xlP50[i], rates[i])
		}
	}

	// Crash-point accounting made it to the result.
	if len(res.CrashSites) == 0 {
		t.Fatal("no crash-site stats on the result")
	}
	opps, injected := uint64(0), uint64(0)
	for _, st := range res.CrashSites {
		opps += st.Opportunities
		injected += st.Injected
	}
	if opps == 0 || injected == 0 {
		t.Fatalf("site counters empty: opportunities=%d injected=%d", opps, injected)
	}
	if injected > opps {
		t.Fatalf("injected (%d) exceeds opportunities (%d)", injected, opps)
	}
}

// TestExtChurnDeterministic re-runs the figure with the same seed and
// demands byte-identical output — crash injection, journal replay and
// scrubbing must all be on the deterministic timeline. The parallel
// run must match the sequential one.
func TestExtChurnDeterministic(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 11, Samples: 4, Parallel: 1}
	a, err := Run("ext-churn", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("ext-churn", o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.String() != b.Table.String() {
		t.Fatal("same seed produced different churn tables")
	}
	o.Parallel = 4
	c, err := Run("ext-churn", o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.String() != c.Table.String() {
		t.Fatal("parallel churn run diverged from sequential")
	}
}

// TestFsckAllExperiments is the acceptance gate: with faults disabled,
// every registered experiment must leave every environment it built
// with zero cross-layer invariant violations. Sequential, because env
// tracking is process-global.
func TestFsckAllExperiments(t *testing.T) {
	toolstack.SetEnvTracking(true)
	defer toolstack.SetEnvTracking(false)
	o := Options{Scale: 0.05, Seed: 3, Samples: 4, Parallel: 1}
	for _, id := range IDs() {
		if _, err := Run(id, o); err != nil {
			t.Fatalf("Run(%s): %v", id, err)
		}
	}
	envs, violations := toolstack.FsckTracked()
	if envs == 0 {
		t.Fatal("tracking captured no environments")
	}
	if len(violations) != 0 {
		for i, v := range violations {
			if i == 10 {
				t.Errorf("... and %d more", len(violations)-10)
				break
			}
			t.Errorf("violation: %s", v)
		}
		t.Fatalf("%d cross-layer violations across %d environments", len(violations), envs)
	}
	t.Logf("fsck clean: %d environments audited", envs)
}

// runTableOf converts an already-run Result (runTable re-runs the
// generator; churn is slow enough to do it once).
func runTableOf(t *testing.T, res Result) *metrics.Table {
	t.Helper()
	tab, ok := res.Table.(*metrics.Table)
	if !ok {
		t.Fatalf("%s result is not a table", res.ID)
	}
	return tab
}
