package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/cluster"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-faults", extFaults)
}

// faultRates is the injection-rate sweep: rate 0 doubles as the
// regression anchor (it must reproduce the undisturbed control plane).
var faultRates = []float64{0, 0.04, 0.08, 0.12, 0.16, 0.20}

// faultCell is one (mode, rate) measurement.
type faultCell struct {
	createP50, createP99 float64
	migP50, migP99       float64
	avail                float64
	injected             uint64
	recoveries           int
	recoveryMS           float64
	virtMS               float64
}

// extFaults — deterministic fault injection against both control
// planes (robustness extension; the paper's §7.1 edge scenario run on a
// bad day). A two-host cluster churns through creations and handover
// migrations while the fault plane injects XenStore transaction
// conflicts, store stalls, lost xenbus handshake events, migration
// stream drops, pool-daemon crashes and whole-host failures at a swept
// rate. Every fault exercises a recovery path — txn backoff/retry,
// device re-attach, stream resume (noxs) or rollback (xl), cold-path
// fallback, cluster failover — and the table reports what that
// recovery costs: creation and migration p50/p99 plus VM availability.
func extFaults(o Options) (Result, error) {
	modes := []struct {
		name string
		mode toolstack.Mode
	}{
		{"xl", toolstack.ModeXL},
		{"chaos", toolstack.ModeLightVM},
	}
	n := o.scaled(40, 12)

	cells := make([]faultCell, len(modes)*len(faultRates))
	err := o.runSeries(len(cells), func(j int) error {
		mi, ri := j/len(faultRates), j%len(faultRates)
		// Seeds are derived per cell so every (mode, rate) owns an
		// independent but reproducible timeline.
		cell, err := runFaultChurn(modes[mi].mode, faultRates[ri], o.Seed+uint64(j)*7919, n)
		if err != nil {
			return fmt.Errorf("ext-faults %s rate %.2f: %w", modes[mi].name, faultRates[ri], err)
		}
		cells[j] = cell
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	t := metrics.NewTable("Extension: fault rate vs control-plane latency and availability",
		"rate",
		"xl_create_p50_ms", "xl_create_p99_ms", "xl_mig_p50_ms", "xl_mig_p99_ms", "xl_avail_pct",
		"chaos_create_p50_ms", "chaos_create_p99_ms", "chaos_mig_p50_ms", "chaos_mig_p99_ms", "chaos_avail_pct")
	virtMS := make([]float64, 0, len(cells))
	for ri, rate := range faultRates {
		xl := cells[0*len(faultRates)+ri]
		ch := cells[1*len(faultRates)+ri]
		t.AddRow(rate,
			xl.createP50, xl.createP99, xl.migP50, xl.migP99, xl.avail,
			ch.createP50, ch.createP99, ch.migP50, ch.migP99, ch.avail)
		virtMS = append(virtMS, xl.virtMS, ch.virtMS)
	}
	for mi, m := range modes {
		var injected uint64
		recoveries := 0
		recoveryMS := 0.0
		for ri := range faultRates {
			c := cells[mi*len(faultRates)+ri]
			injected += c.injected
			recoveries += c.recoveries
			recoveryMS += c.recoveryMS
		}
		mean := 0.0
		if recoveries > 0 {
			mean = recoveryMS / float64(recoveries)
		}
		t.Note("%s: %d faults injected across the sweep, %d host failovers (mean recovery %.1f ms)",
			m.name, injected, recoveries, mean)
	}
	t.Note("faults: store txn conflicts + stalls, lost xenbus handshakes, migration stream drops, pool-daemon crashes, host failures")
	t.Note("recovery: txn backoff/retry, device re-attach, stream resume (chaos) or rollback (xl), cold-path fallback, §7.1 failover")
	return Result{
		ID:        "ext-faults",
		Paper:     "robustness extension: control-plane recovery under injected faults (no paper figure)",
		Table:     t,
		VirtualMS: maxOf(virtMS),
	}, nil
}

// runFaultChurn drives one (mode, rate) cell: a two-host cluster under
// a create/migrate churn, with host failures and replacements along
// the way. Availability counts every fault-caused outage against the
// total operations attempted: failed creations, aborted migrations,
// and VMs lost to a dead host (recovered or not, they were down).
func runFaultChurn(mode toolstack.Mode, rate float64, seed uint64, n int) (faultCell, error) {
	clock := sim.NewClock()
	cl := cluster.New(clock)
	machine := sched.Machine{Name: "fault-host", Cores: 4, Dom0Cores: 1, MemoryGB: 32}

	var inj *faults.Injector
	if rate > 0 {
		inj = faults.New(clock, seed, faults.Plan{Rate: rate})
	}
	addHost := func(name string, hostSeed uint64) error {
		h, err := cl.AddHost(name, machine, hostSeed)
		if err != nil {
			return err
		}
		h.Env.SetFaults(inj)
		return nil
	}
	if err := addHost("h0", seed); err != nil {
		return faultCell{}, err
	}
	if err := addHost("h1", seed+1); err != nil {
		return faultCell{}, err
	}
	live := func() []string {
		out := make([]string, 0, 2)
		for _, hn := range cl.Hosts() {
			if !cl.Failed(hn) {
				out = append(out, hn)
			}
		}
		return out
	}

	img := guest.Daytime()
	var creates, migs metrics.Series
	totalOps, failedOps := 0, 0
	recoveries := 0
	var recoveryTotal time.Duration
	nextHost := 2

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vm%03d", i)
		totalOps++
		vm, _, err := cl.Place(mode, name, img)
		placed := err == nil
		if placed {
			creates.AddDuration(vm.CreateTime + vm.BootTime)
		} else {
			// A typed failure (ErrTxnRetriesExhausted, ErrDeviceTimeout,
			// resource exhaustion) — the VM never came up.
			failedOps++
		}
		// The pool daemon's background beat (split modes only; a no-op
		// for xl, and for a crashed daemon until it restarts).
		for _, hn := range live() {
			if h, herr := cl.Host(hn); herr == nil {
				if rerr := h.Replenish(); rerr != nil {
					return faultCell{}, rerr
				}
			}
		}

		// Handover migration: every third subscriber moves to the other
		// host right after arriving (§7.1 churn).
		if placed && i%3 == 2 {
			srcName, herr := cl.HostOf(name)
			if herr == nil {
				dstName := ""
				for _, hn := range live() {
					if hn != srcName {
						dstName = hn
						break
					}
				}
				if dstName != "" {
					totalOps++
					if d, merr := cl.Move(name, dstName); merr != nil {
						failedOps++ // rolled back: source still runs, but the handover failed
					} else {
						migs.AddDuration(d)
					}
				}
			}
		}

		// Whole-host failure: the oldest live host dies, survivors absorb
		// its VMs via §7.1 placement, and a cold replacement joins.
		if inj.Fire(faults.KindHostFailure) {
			victims := live()
			if len(victims) > 1 {
				lost, ferr := cl.FailHost(victims[0])
				if ferr != nil {
					return faultCell{}, ferr
				}
				// Every lost VM was down regardless of recovery outcome.
				totalOps += len(lost)
				failedOps += len(lost)
				// A cold spare joins before the failover sweep, so lost
				// VMs land on fresh capacity (xl leaves migrated-away
				// names registered in the source store, so a survivor
				// that once hosted a VM would reject its name).
				if err := addHost(fmt.Sprintf("h%d", nextHost), seed+uint64(nextHost)); err != nil {
					return faultCell{}, err
				}
				nextHost++
				d, _, foErr := cl.Failover(lost)
				recoveries++
				recoveryTotal += d
				if foErr != nil {
					return faultCell{}, foErr
				}
			}
		}
	}

	cell := faultCell{
		createP50:  creates.Percentile(50),
		createP99:  creates.Percentile(99),
		migP50:     migs.Percentile(50),
		migP99:     migs.Percentile(99),
		avail:      100 * (1 - float64(failedOps)/float64(totalOps)),
		recoveries: recoveries,
		recoveryMS: float64(recoveryTotal) / float64(time.Millisecond),
		virtMS:     float64(clock.Now().Milliseconds()),
	}
	if inj != nil {
		cell.injected = inj.TotalInjected()
	}
	return cell, nil
}
