package experiments

import (
	"bytes"
	"testing"
)

// TestExtOverloadParallelDeterminism: the overload figure renders
// byte-identical JSON at any worker count — each cell-host job owns
// its clock, arrival process, fault streams and retry heap, and the
// per-cell merge runs in fixed host order after the pool drains. This
// is the figure where determinism is hardest earned: retry re-arrivals
// are scheduled mid-run from seeded fault streams and merged with
// fresh traffic through a (time, seq)-ordered heap, so any hidden
// iteration-order dependence would show up here as a diff.
func TestExtOverloadParallelDeterminism(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Samples: 8}
	render := func(parallel int) []byte {
		o.Parallel = parallel
		res, err := Run("ext-overload", o)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return encodeGolden(t, res)
	}
	base := render(1)
	for _, p := range []int{2, 8} {
		if doc := render(p); !bytes.Equal(doc, base) {
			t.Errorf("ext-overload: output at parallel=%d differs from parallel=1\n parallel=1: %s\n parallel=%d: %s",
				p, base, p, doc)
		}
	}
}

// TestExtOverloadGates: the generator refuses to render a figure where
// the metastable signature is absent (storm-on defenses-off cells must
// stay collapsed after the burst) or where the defenses fail to
// recover goodput with a bounded tail — so a clean run at a different
// seed proves the phenomenon is a property of the model, not of one
// lucky seed.
func TestExtOverloadGates(t *testing.T) {
	for _, seed := range []uint64{5, 23} {
		if _, err := Run("ext-overload", Options{Scale: 0.05, Seed: seed, Samples: 8, Parallel: 0}); err != nil {
			t.Fatalf("ext-overload at seed %d: %v", seed, err)
		}
	}
}
