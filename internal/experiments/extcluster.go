package experiments

import (
	"fmt"
	"reflect"
	"time"

	"lightvm/internal/cluster"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-cluster", extCluster)
}

// extClusterWorkerSweep is the default shard-count sweep: every run
// must render byte-identically at each count, and the figure verifies
// that in-run before reporting.
var extClusterWorkerSweep = []int{1, 2, 8}

// extCluster — datacenter-scale churn on the sharded engine (scaling
// extension; no paper figure). The paper runs its density and boot
// experiments on one machine; this figure asks what the same toolstack
// economics look like when the §7.1 scheduler is driving a fleet. At
// full scale it simulates 1,024 hosts (640 chaos members at 1,600
// unikernels each — 1,024,000 domains — plus 384 xl members at 64
// each, 24,576 more) as independent logical processes under one
// controller: arrival waves, live migrations, departures, and
// whole-machine failures recovered through heartbeat detection,
// fencing and re-placement.
//
// The second thing the figure demonstrates is the engine contract:
// host timelines execute concurrently between conservative
// synchronization windows, yet the schedule is a pure function of the
// seed. Unless Options.Shards pins one worker count, the run is
// repeated at 1, 2 and 8 workers and the reports are required to be
// deeply equal — the published table is byte-identical at every shard
// count by construction, not by luck.
func extCluster(o Options) (Result, error) {
	pools := []cluster.HostPool{
		{Name: "chaos", Mode: toolstack.ModeLightVM,
			Hosts: o.scaled(640, 4), VMs: o.scaled(1_024_000, 64), Image: guest.Daytime()},
		// xl's density is capped by its control plane, not by memory:
		// at ~0.5s per create, 64 guests per host is already ~30s of
		// serialized toolstack work — the most the drain window can
		// absorb. The 25x density gap against chaos is the figure's
		// point (cf. Fig. 9's per-host creation-time curves).
		{Name: "xl", Mode: toolstack.ModeXL,
			Hosts: o.scaled(384, 2), VMs: o.scaled(24_576, 16), Image: guest.Daytime()},
	}
	spec := cluster.ChurnSpec{
		Waves:          4,
		WavePeriod:     2 * time.Second,
		MigratePerWave: o.scaled(200, 2),
		DepartPerWave:  o.scaled(100, 1),
		FailAt:         extClusterFailures(o.scaled(8, 1)),
		Drain:          60 * time.Second,
	}
	machine := sched.Machine{Name: "member", Cores: 4, Dom0Cores: 1, MemoryGB: 32}

	sweep := extClusterWorkerSweep
	if o.Shards > 0 {
		sweep = []int{o.Shards}
	}
	var first *cluster.ChurnReport
	for _, workers := range sweep {
		sc, err := cluster.NewSharded(cluster.ShardedConfig{
			Machine: machine, Workers: workers, Seed: o.Seed,
		}, pools)
		if err != nil {
			return Result{}, fmt.Errorf("ext-cluster workers=%d: %w", workers, err)
		}
		rep, err := sc.RunChurn(spec)
		if err != nil {
			return Result{}, fmt.Errorf("ext-cluster workers=%d: %w", workers, err)
		}
		if first == nil {
			first = rep
		} else if !reflect.DeepEqual(rep, first) {
			return Result{}, fmt.Errorf(
				"ext-cluster: workers=%d produced a different report than workers=%d — engine determinism broken",
				workers, sweep[0])
		}
	}

	// The run must converge: every surviving VM running, every
	// invariant intact. Saturation backpressure is reported, not fatal.
	if first.Unplaced > 0 {
		return Result{}, fmt.Errorf("ext-cluster: %d VMs unplaced at stop", first.Unplaced)
	}
	if first.FsckViolated > 0 {
		return Result{}, fmt.Errorf("ext-cluster: %d cross-layer fsck violations", first.FsckViolated)
	}

	t := metrics.NewTable("Extension: 1M-domain fleet churn on the sharded engine (xl vs chaos pools)",
		"hosts_failed", "failovers", "failover_p50_ms", "failover_p99_ms",
		"chaos_hosts", "chaos_placed", "chaos_created", "chaos_migrations",
		"chaos_create_p50_ms", "chaos_create_p99_ms", "chaos_migrate_p99_ms",
		"xl_hosts", "xl_placed", "xl_created", "xl_migrations",
		"xl_create_p50_ms", "xl_create_p99_ms", "xl_migrate_p99_ms")
	row := []float64{
		float64(first.HostsFailed), float64(first.Failovers),
		first.FailoverMS.Percentile(50), first.FailoverMS.Percentile(99),
	}
	for _, p := range first.Pools {
		row = append(row,
			float64(p.Hosts), float64(p.Placed), float64(p.Created), float64(p.Migrations),
			p.CreateMS.Percentile(50), p.CreateMS.Percentile(99), p.MigrateMS.Percentile(99))
	}
	t.AddRow(row...)
	t.Note("fleet: %d hosts, %d domains requested; engine: %d windows, %d events, %d messages",
		pools[0].Hosts+pools[1].Hosts, pools[0].VMs+pools[1].VMs,
		first.Engine.Windows, first.Engine.Events, first.Engine.Messages)
	t.Note("churn: %d waves, %d migrations/wave, %d departures/wave, %d host deaths; %d stale acks fenced, %d placements backpressured, %d heartbeat snapshots deferred",
		spec.Waves, spec.MigratePerWave, spec.DepartPerWave, len(spec.FailAt),
		first.Fenced, first.Saturated, first.DeferredBeats)
	// This note must not mention which worker counts actually ran:
	// the table is required to render byte-identically whether the
	// run was pinned (Options.Shards) or swept.
	t.Note("determinism: the schedule is a pure function of the seed; this table is byte-identical at every engine worker count")
	return Result{
		ID:        "ext-cluster",
		Paper:     "scaling extension: §7.1 scheduler over 1,024 sharded hosts, 1.3M domains (no paper figure)",
		Table:     t,
		VirtualMS: first.MakespanMS,
	}, nil
}

// extClusterFailures staggers n whole-machine deaths across the churn
// waves, starting after the first wave has landed.
func extClusterFailures(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = 2500*time.Millisecond + time.Duration(i)*700*time.Millisecond
	}
	return out
}
