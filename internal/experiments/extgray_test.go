package experiments

import (
	"testing"
)

// TestExtGrayShape checks the policy trade-off the table exists to
// show, plus the two safety gates. Zero double-starts and zero fsck
// violations are enforced inside the generator itself — a cell that
// double-runs a domain or ends dirty fails the run, so a passing
// table IS the split-brain-safety proof.
func TestExtGrayShape(t *testing.T) {
	res, err := Run("ext-gray", smallOpts)
	if err != nil {
		t.Fatalf("Run(ext-gray): %v", err)
	}
	tab := runTableOf(t, res)

	rates := col(t, tab, "rate")
	for _, m := range []string{"xl", "chaos"} {
		dbl := col(t, tab, m+"_double")
		fp := col(t, tab, m+"_falsepos")
		p50 := col(t, tab, m+"_unavail_p50_ms")
		p99 := col(t, tab, m+"_unavail_p99_ms")
		sawUnavail := false
		for i := range rates {
			// The fence invariant, per cell, per mode.
			if dbl[i] != 0 {
				t.Fatalf("%s double-starts at row %d: %v", m, i, dbl[i])
			}
			// Rate 0 is the regression anchor: nothing to detect, so
			// nothing may fail over or misfire.
			if rates[i] == 0 && (fp[i] != 0 || p99[i] != 0) {
				t.Fatalf("%s rate-0 row %d not quiet: falsepos=%v p99=%v", m, i, fp[i], p99[i])
			}
			if p99[i] < p50[i] {
				t.Fatalf("%s p99 < p50 at row %d", m, i)
			}
			if p99[i] > 0 {
				sawUnavail = true
			}
		}
		if !sawUnavail {
			t.Fatalf("%s: no recovery windows anywhere — the gray plane never bit", m)
		}
	}
}

// TestExtGrayDeterministic is the acceptance gate: the same seed must
// produce a byte-identical table — monitor ticks, gray-fault draws,
// failover sweeps and all.
func TestExtGrayDeterministic(t *testing.T) {
	render := func() string {
		res, err := Run("ext-gray", smallOpts)
		if err != nil {
			t.Fatalf("Run(ext-gray): %v", err)
		}
		return res.Table.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed, different table:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
