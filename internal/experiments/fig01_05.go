package experiments

import (
	"fmt"
	"math"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/syscalls"
	"lightvm/internal/toolstack"
)

func init() {
	register("fig01", fig01)
	register("fig02", fig02)
	register("fig04", fig04)
	register("fig05", fig05)
	register("tbl-guests", tblGuests)
}

// fig01 — "The unrelenting growth of the Linux syscall API over the
// years (x86_32)".
func fig01(Options) (Result, error) {
	t := metrics.NewTable("Figure 1: Linux syscall API growth (x86_32)", "year", "syscalls")
	for _, r := range syscalls.Sorted() {
		t.AddRow(float64(r.Year), float64(r.Syscalls))
	}
	t.Note("growth ≈ %.1f syscalls/year; x86 VM ABI surface ≈ %d interaction points",
		syscalls.GrowthPerYear(), syscalls.X86ABISurface)
	return Result{ID: "fig01", Paper: "~200 syscalls in 2002 growing to ~400 by 2018", Table: t}, nil
}

// fig02 — "Boot times grow linearly with VM image size": the same
// daytime unikernel padded with binary objects from ~0 to 1000 MB,
// booted from a ramdisk with stock xl.
func fig02(o Options) (Result, error) {
	t := metrics.NewTable("Figure 2: boot time vs VM image size (xl, padded daytime unikernel)",
		"image_mb", "boot_ms")
	maxMB := o.scaled(1000, 50)
	step := maxMB / 10
	if step == 0 {
		step = 1
	}
	// Each padding point boots on a fresh host with its own timeline,
	// so the points sweep in parallel.
	var mbs []int
	for mb := 0; mb <= maxMB; mb += step {
		mbs = append(mbs, mb)
	}
	type point struct{ imageMB, bootMS, virtMS float64 }
	pts := make([]point, len(mbs))
	err := o.runSeries(len(mbs), func(i int) error {
		h, err := core.NewHost(sched.Xeon4, o.Seed)
		if err != nil {
			return err
		}
		img := guest.Daytime().WithPadding(uint64(mbs[i]) << 20)
		vm, err := h.CreateVM(toolstack.ModeXL, "padded", img)
		if err != nil {
			return err
		}
		pts[i] = point{
			imageMB: float64(img.TotalSize()) / (1 << 20),
			bootMS:  float64(vm.CreateTime+vm.BootTime) / float64(time.Millisecond),
			virtMS:  h.Clock.Now().Milliseconds(),
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	virt := 0.0
	for _, p := range pts {
		t.AddRow(p.imageMB, p.bootMS)
		virt = math.Max(virt, p.virtMS)
	}
	t.Note("paper slope ≈ 1 ms/MB up to ~1 s at 1000 MB")
	return Result{ID: "fig02", Paper: "boot time grows linearly with image size, ~1s at 1GB", Table: t, VirtualMS: virt}, nil
}

// fig04 — domain creation and boot times for Debian, Tinyx, the
// daytime unikernel (xl on the 4-core Xeon), Docker containers and
// processes, for 1..1000 running instances.
func fig04(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	t := metrics.NewTable("Figure 4: create/boot times vs number of running guests (xl)",
		"n", "debian_create_ms", "debian_boot_ms", "tinyx_create_ms", "tinyx_boot_ms",
		"unikernel_create_ms", "unikernel_boot_ms", "docker_run_ms", "process_ms")

	type vmSeries struct {
		img    guest.Image
		create map[int]float64
		boot   map[int]float64
	}
	series := []*vmSeries{
		{img: guest.DebianMinimal(), create: map[int]float64{}, boot: map[int]float64{}},
		{img: guest.TinyxNoop(), create: map[int]float64{}, boot: map[int]float64{}},
		{img: guest.Daytime(), create: map[int]float64{}, boot: map[int]float64{}},
	}
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	// Four independent timelines: one host per VM series plus one for
	// the container/process baselines.
	dockerMS := map[int]float64{}
	procMS := map[int]float64{}
	virtMS := make([]float64, len(series)+1)
	err := o.runSeries(len(series)+1, func(j int) error {
		h, err := core.NewHost(sched.Machine{Name: "xeon-big", Cores: 4, Dom0Cores: 1, MemoryGB: 192}, o.Seed)
		if err != nil {
			return err
		}
		defer func() { virtMS[j] = h.Clock.Now().Milliseconds() }()
		if j == len(series) {
			// Docker and process baselines share one host, as on the
			// testbed.
			for i := 1; i <= n; i++ {
				c, err := h.Docker.Run("noop")
				if err != nil {
					return err
				}
				if wanted[i] {
					dockerMS[i] = float64(c.StartTime) / float64(time.Millisecond)
				}
				lat, err := h.Procs.Spawn(1 << 20)
				if err != nil {
					return err
				}
				if wanted[i] {
					procMS[i] = float64(lat) / float64(time.Millisecond)
				}
			}
			return nil
		}
		s := series[j]
		drv := h.Driver(toolstack.ModeXL)
		for i := 1; i <= n; i++ {
			vm, err := drv.Create(fmt.Sprintf("%s-%d", s.img.Name, i), s.img)
			if err != nil {
				return fmt.Errorf("fig04 %s #%d: %w", s.img.Name, i, err)
			}
			if wanted[i] {
				s.create[i] = float64(vm.CreateTime) / float64(time.Millisecond)
				s.boot[i] = float64(vm.BootTime) / float64(time.Millisecond)
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	for _, p := range points {
		t.AddRow(float64(p),
			series[0].create[p], series[0].boot[p],
			series[1].create[p], series[1].boot[p],
			series[2].create[p], series[2].boot[p],
			dockerMS[p], procMS[p])
	}
	t.Note("paper @N=0: debian 500ms+1.5s, tinyx 360ms+180ms, unikernel 80ms+3ms, docker ~200ms, process 3.5ms")
	t.Note("paper @N=1000 create: debian 42s, tinyx 10s, unikernel 700ms (our model reproduces ordering and growth, compressed magnitudes for the Linux guests; see EXPERIMENTS.md)")
	return Result{ID: "fig04", Paper: "creation grows with N; VM size ordering debian≫tinyx≫unikernel", Table: t, VirtualMS: maxOf(virtMS)}, nil
}

// maxOf returns the largest element of vs (0 when empty) — the
// simulated makespan across a figure's parallel timelines.
func maxOf(vs []float64) float64 {
	out := 0.0
	for _, v := range vs {
		out = math.Max(out, v)
	}
	return out
}

// fig05 — breakdown of xl creation overhead by category vs number of
// running guests (daytime unikernel).
func fig05(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	t := metrics.NewTable("Figure 5: xl creation-time breakdown vs running guests",
		"n", "toolstack_ms", "load_ms", "devices_ms", "xenstore_ms", "hypervisor_ms", "config_ms")
	h, err := core.NewHost(sched.Xeon4, o.Seed)
	if err != nil {
		return Result{}, err
	}
	drv := h.Driver(toolstack.ModeXL)
	img := guest.Daytime()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for i := 1; i <= n; i++ {
		vm, err := drv.Create(fmt.Sprintf("g%d", i), img)
		if err != nil {
			return Result{}, err
		}
		if wanted[i] {
			b := vm.LastBreakdown
			t.AddRow(float64(i), ms(b.Toolstack), ms(b.Load), ms(b.Devices),
				ms(b.XenStore), ms(b.Hypervisor), ms(b.Config))
		}
	}
	t.Note("paper: xenstore grows superlinearly, devices stay ~constant and dominate at low N; log-rotation spikes")
	return Result{ID: "fig05", Paper: "XenStore interactions and device creation dominate; store cost grows with N", Table: t, VirtualMS: h.Clock.Now().Milliseconds()}, nil
}

// tblGuests — the §3/§6 guest inventory (image size, runtime memory).
func tblGuests(Options) (Result, error) {
	t := metrics.NewTable("Guest inventory (paper §3, §6)",
		"idx", "image_mb", "runtime_mb", "boot_work_ms", "devices")
	names := ""
	for i, r := range core.GuestTable() {
		t.AddRow(float64(i), r.ImageMB, r.RuntimeMB,
			float64(r.BootWork)/float64(time.Millisecond), float64(r.DeviceCount))
		if i > 0 {
			names += ", "
		}
		names += fmt.Sprintf("%d=%s", i, r.Name)
	}
	t.Note("rows: %s", names)
	t.Note("paper: daytime 480KB/3.6MB, minipython ~1MB/8MB, tinyx ~10MB/30MB, debian 1.1GB/111MB")
	return Result{ID: "tbl-guests", Paper: "guest image sizes and runtime footprints", Table: t}, nil
}
