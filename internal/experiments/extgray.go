package experiments

import (
	"errors"
	"fmt"
	"time"

	"lightvm/internal/cluster"
	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-gray", extGray)
}

// grayDetects sweeps the dead-declaration timeout: how long the
// monitor tolerates silence before fencing a member and re-placing its
// VMs. Short timeouts recover fast but misfire on hosts that are
// merely slow; long ones never misfire but leave VMs down longer.
var grayDetects = []time.Duration{
	400 * time.Millisecond,
	800 * time.Millisecond,
	1600 * time.Millisecond,
}

// grayRates is the per-opportunity probability that a host turns gray
// (slow, flapping, or partitioned) at each heartbeat pass. With ten
// passes a second, rate r means ~10r episodes per host per kind per
// second, each lasting 0.4–3.8 s — these values keep faults episodic
// rather than continuous. Rate 0 is the regression anchor: no monitor
// work beyond heartbeats, and it must report zero failovers of any
// kind.
var grayRates = []float64{0, 0.003, 0.01}

// grayCell is one (mode, detect, rate) measurement.
type grayCell struct {
	unavailP50, unavailP99 float64
	falsePositives         int
	doubleStarts           int
	failovers              int
	deferred               int
	quarantined            int
	staleRejected          uint64
	saturated              int
	fsckViolations         int
	virtMS                 float64
}

// extGray — gray-failure resilience (robustness extension; no paper
// figure). Hosts do not only fail cleanly: they get slow, they flap,
// they partition — and a naive monitor either double-runs a domain
// (split brain) or fails over hosts that were never down. This figure
// sweeps the detection timeout against the gray-fault rate on a
// four-host cluster under placement churn and reports what each policy
// point costs: per-VM unavailability p50/p99, false-positive
// failovers, and the double-start count — which the lease fence must
// hold at zero everywhere. Every cell ends with a cluster-wide lease
// fsck plus a per-host toolstack fsck, both of which must be clean.
func extGray(o Options) (Result, error) {
	modes := []struct {
		name string
		mode toolstack.Mode
	}{
		{"xl", toolstack.ModeXL},
		{"chaos", toolstack.ModeLightVM},
	}
	n := o.scaled(30, 10)

	type point struct {
		detect time.Duration
		rate   float64
	}
	points := make([]point, 0, len(grayDetects)*len(grayRates))
	for _, d := range grayDetects {
		for _, r := range grayRates {
			points = append(points, point{d, r})
		}
	}

	cells := make([]grayCell, len(modes)*len(points))
	err := o.runSeries(len(cells), func(j int) error {
		mi, pi := j/len(points), j%len(points)
		p := points[pi]
		cell, err := runGrayChurn(modes[mi].mode, p.detect, p.rate, o.Seed+uint64(j)*7919, n)
		if err != nil {
			return fmt.Errorf("ext-gray %s detect %v rate %.2f: %w",
				modes[mi].name, p.detect, p.rate, err)
		}
		cells[j] = cell
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	t := metrics.NewTable("Extension: gray-failure detection policy vs availability and safety",
		"detect_ms", "rate",
		"xl_unavail_p50_ms", "xl_unavail_p99_ms", "xl_falsepos", "xl_double",
		"chaos_unavail_p50_ms", "chaos_unavail_p99_ms", "chaos_falsepos", "chaos_double")
	virtMS := make([]float64, 0, len(cells))
	for pi, p := range points {
		xl := cells[0*len(points)+pi]
		ch := cells[1*len(points)+pi]
		t.AddRow(float64(p.detect)/float64(time.Millisecond), p.rate,
			xl.unavailP50, xl.unavailP99, float64(xl.falsePositives), float64(xl.doubleStarts),
			ch.unavailP50, ch.unavailP99, float64(ch.falsePositives), float64(ch.doubleStarts))
		virtMS = append(virtMS, xl.virtMS, ch.virtMS)
	}
	for mi, m := range modes {
		var agg grayCell
		for pi := range points {
			c := cells[mi*len(points)+pi]
			agg.failovers += c.failovers
			agg.deferred += c.deferred
			agg.quarantined += c.quarantined
			agg.staleRejected += c.staleRejected
			agg.saturated += c.saturated
			agg.doubleStarts += c.doubleStarts
			agg.fsckViolations += c.fsckViolations
		}
		t.Note("%s: %d failovers (%d deferred on saturation), %d quarantines, %d stale ops fenced, %d placements backpressured",
			m.name, agg.failovers, agg.deferred, agg.quarantined, agg.staleRejected, agg.saturated)
		if agg.doubleStarts > 0 || agg.fsckViolations > 0 {
			return Result{}, fmt.Errorf("ext-gray %s: %d double-starts, %d fsck violations (want 0/0)",
				m.name, agg.doubleStarts, agg.fsckViolations)
		}
	}
	t.Note("gray faults: slow hosts (cost dilation), flaps (silent outage + return), pairwise partitions")
	t.Note("safety: zero double-starts and zero lease/toolstack fsck violations in every cell (enforced)")
	return Result{
		ID:        "ext-gray",
		Paper:     "robustness extension: gray-failure detection, lease-fenced failover (no paper figure)",
		Table:     t,
		VirtualMS: maxOf(virtMS),
	}, nil
}

// runGrayChurn drives one (mode, detect, rate) cell: a four-host
// cluster placing and migrating VMs while the gray plane degrades
// hosts underneath the monitor. The churn uses only cluster-level
// operations (Place/Move/Destroy/Idle) — once health is enabled the
// clock may only advance under the cluster lock.
func runGrayChurn(mode toolstack.Mode, detect time.Duration, rate float64, seed uint64, n int) (grayCell, error) {
	clock := sim.NewClock()
	cl := cluster.New(clock)
	machine := sched.Machine{Name: "gray-host", Cores: 4, Dom0Cores: 1, MemoryGB: 32}
	const hosts = 4
	for i := 0; i < hosts; i++ {
		if _, err := cl.AddHost(fmt.Sprintf("cell-%d", i), machine, seed+uint64(i)); err != nil {
			return grayCell{}, err
		}
	}
	var inj *faults.Injector
	if rate > 0 {
		inj = faults.New(clock, seed, faults.Plan{
			Rate:  rate,
			Kinds: []faults.Kind{faults.KindHostSlow, faults.KindPartition, faults.KindHostFlap},
		})
	}
	cl.EnableHealth(cluster.HealthConfig{
		Period:       costs.HeartbeatPeriod,
		SuspectAfter: detect / 2,
		DeadAfter:    detect,
		FlapLimit:    -1, // policy sweep: quarantine measured separately, never triggered here
	}, inj)

	img := guest.Daytime()
	cell := grayCell{}
	live := 0
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("vm%03d", i)
		_, _, err := cl.Place(mode, name, img)
		switch {
		case err == nil:
			live++
		case isGrayBackpressure(err):
			// Degraded cluster refused the placement — the typed
			// backpressure the policy is supposed to produce. Park the
			// request and retry after the next heartbeat interval.
			cell.saturated++
			cl.Idle(costs.HeartbeatPeriod * 3)
			if _, _, rerr := cl.Place(mode, name, img); rerr == nil {
				live++
			} else if !isGrayBackpressure(rerr) {
				return grayCell{}, rerr
			}
		default:
			return grayCell{}, err
		}
		// Let heartbeats, detections and deferred-failover retries run
		// between arrivals.
		cl.Idle(costs.HeartbeatPeriod * 2)

		// Handover churn: every fourth subscriber moves right after
		// arriving; gray refusals (suspect target, cut edge, fenced
		// source) are backpressure, not errors.
		if i%4 == 3 {
			if src, herr := cl.HostOf(name); herr == nil {
				dst := fmt.Sprintf("cell-%d", i%hosts)
				if dst != src {
					if _, merr := cl.Move(name, dst); merr != nil {
						if !isGrayBackpressure(merr) {
							return grayCell{}, merr
						}
						cell.saturated++
					}
				}
			}
		}
		// And every sixth departs, exercising lease revocation.
		if i%6 == 5 && live > 1 {
			victim := fmt.Sprintf("vm%03d", i-3)
			if _, herr := cl.HostOf(victim); herr == nil {
				if derr := cl.Destroy(victim); derr != nil && !isGrayBackpressure(derr) {
					return grayCell{}, derr
				}
				live--
			}
		}
	}

	// Close the injection window, then idle past the longest possible
	// episode (a max-jitter partition) plus detection, so every host
	// returns, fences its stale copies, and every deferred failover
	// resolves. Without closing the window first this cannot converge:
	// some host is always mid-episode.
	cl.EndGrayWindow()
	drain := costs.GrayPartitionMin + costs.GrayPartitionExtra + detect + 10*costs.HeartbeatPeriod
	cl.Idle(drain)

	rep := cl.HealthReport()
	var unavail metrics.Series
	for _, w := range rep.UnavailMS {
		unavail.Add(w)
	}
	cell.unavailP50 = unavail.Percentile(50)
	cell.unavailP99 = unavail.Percentile(99)
	cell.falsePositives = rep.FalsePositives
	cell.doubleStarts = rep.DoubleStarts
	cell.failovers = rep.Failovers
	cell.deferred = rep.Deferred
	cell.quarantined = rep.Quarantined
	cell.staleRejected = rep.StaleRejected
	cell.virtMS = float64(clock.Now().Milliseconds())

	// Safety audit: cluster-wide lease invariants, then each host's
	// cross-layer toolstack fsck.
	cell.fsckViolations += len(cl.FsckLeases())
	for _, hn := range cl.Hosts() {
		h, err := cl.Host(hn)
		if err != nil {
			return grayCell{}, err
		}
		cell.fsckViolations += len(toolstack.Fsck(h.Env))
	}
	if rate == 0 && cell.failovers != 0 {
		return grayCell{}, fmt.Errorf("rate-0 cell saw %d failovers", cell.failovers)
	}
	return cell, nil
}

// isGrayBackpressure classifies the typed refusals a degraded cluster
// is allowed to answer with: capacity exists but is quarantined or
// suspect (saturation), the target edge is cut, or the source is
// dead-declared / fenced.
func isGrayBackpressure(err error) bool {
	return errors.Is(err, cluster.ErrClusterSaturated) ||
		errors.Is(err, cluster.ErrPartitioned) ||
		errors.Is(err, cluster.ErrHostFailed) ||
		errors.Is(err, toolstack.ErrStaleLease)
}
