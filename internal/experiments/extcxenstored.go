package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
	"lightvm/internal/xenstore"
)

func init() {
	register("ext-cxenstored", extCxenstored)
}

// extCxenstored — the paper's footnote 3: "this already uses
// oxenstored, the faster of the two available implementations of the
// XenStore. Results with cxenstored show much higher overheads." We
// rerun the Fig. 9 xl sweep under both store daemons.
func extCxenstored(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	sweep := func(v xenstore.Variant) (map[int]float64, float64, error) {
		h, err := core.NewHost(sched.Xeon4, o.Seed)
		if err != nil {
			return nil, 0, err
		}
		h.Env.Store.SetVariant(v)
		drv := h.Driver(toolstack.ModeXL)
		img := guest.Daytime()
		out := map[int]float64{}
		for i := 1; i <= n; i++ {
			vm, err := drv.Create(fmt.Sprintf("g%d", i), img)
			if err != nil {
				return nil, 0, err
			}
			if wanted[i] {
				out[i] = float64(vm.CreateTime+vm.BootTime) / float64(time.Millisecond)
			}
		}
		return out, h.Clock.Now().Milliseconds(), nil
	}
	// The two store daemons sweep on independent hosts — run both
	// variants in parallel.
	variants := []xenstore.Variant{xenstore.Oxenstored, xenstore.Cxenstored}
	cols := make([]map[int]float64, len(variants))
	virtMS := make([]float64, len(variants))
	err := o.runSeries(len(variants), func(i int) error {
		m, v, err := sweep(variants[i])
		cols[i], virtMS[i] = m, v
		return err
	})
	if err != nil {
		return Result{}, err
	}
	ox, cx := cols[0], cols[1]
	t := metrics.NewTable("Extension: xl creation under oxenstored vs cxenstored (daytime unikernel)",
		"n", "oxenstored_ms", "cxenstored_ms", "slowdown")
	for _, p := range points {
		t.AddRow(float64(p), ox[p], cx[p], cx[p]/ox[p])
	}
	t.Note("paper footnote 3: cxenstored shows 'much higher overheads' than the oxenstored results plotted in Figs. 5 and 9")
	return Result{ID: "ext-cxenstored", Paper: "footnote 3: cxenstored much slower than oxenstored", Table: t, VirtualMS: maxOf(virtMS)}, nil
}
