package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/metrics"
	"lightvm/internal/toolstack"
	"lightvm/internal/traffic"
)

func init() {
	register("ext-serve", extServe)
}

// serveModes is the figure's serving-backend sweep, in row order.
var serveModes = []traffic.Mode{
	traffic.VMPerRequest, traffic.PoolReactive, traffic.PoolPredictive,
	traffic.Container, traffic.Process,
}

// servePatterns is the arrival-pattern sweep, in row order.
var servePatterns = []string{"poisson", "burst", "flash"}

// extServe — open-loop traffic serving (extension; the quantitative
// version of §7.2's just-in-time instantiation). A nominal 512-host
// fleet serves 10k and 100k aggregate RPS with one unikernel per
// request: arrivals are generated open-loop on the virtual clock
// (Poisson, synchronized-burst MMPP, and a replayed flash-crowd
// trace), each request cold-boots or pool-takes a real Daytime guest,
// gets its answer from the actual app, and is torn down. Per-request
// containers and fork/exec processes are the baselines. Hosts are
// independent, so the figure simulates a deterministic sample of the
// fleet per cell and merges the per-host histograms; rates are
// intensive (per-host), so the sample is unbiased — the note records
// the sample size.
//
// Columns: latency quantiles from the fixed-bucket histograms,
// timeout rate (served past the 750ms deadline), reject rate (shed by
// admission control at 2s of control-plane backlog, or refused by the
// backend — the container memory wall), and mean shells kept warm.
//
// The generator enforces the headline ordering on the boot-dominated
// cells (10k RPS, poisson/burst): warm-pool p99 < VM-per-request
// p99 < container p99. The flash cells deliberately push the cold
// path past saturation, so they are reported, not gated.
func extServe(o Options) (Result, error) {
	const fleetHosts = 512
	hostsSim := o.scaled(8, 2)
	reqPerHost := o.scaled(1200, 60)
	rates := []float64{10_000, 100_000} // aggregate fleet RPS

	type cell struct{ mi, pi, ri int }
	var cells []cell
	for _, ri := range []int{0, 1} {
		for pi := range servePatterns {
			for mi := range serveModes {
				cells = append(cells, cell{mi, pi, ri})
			}
		}
	}
	jobs := len(cells) * hostsSim
	stats := make([]*traffic.Stats, jobs)
	virtMS := make([]float64, jobs)

	err := o.runSeries(jobs, func(j int) error {
		ci, host := j/hostsSim, j%hostsSim
		c := cells[ci]
		perHost := rates[c.ri] / fleetHosts
		base := o.Seed + uint64(ci)*7919
		hseed := base + uint64(host)*104729 + 1
		var arr traffic.Arrivals
		switch servePatterns[c.pi] {
		case "burst":
			// One modulation seed per cell: every host in the fleet
			// bursts at the same virtual times.
			arr = traffic.NewMMPP(base+13, hseed, perHost)
		case "flash":
			arr = traffic.FlashTrace(hseed, perHost, reqPerHost)
		default:
			arr = traffic.NewPoisson(hseed, perHost)
		}
		st, h, err := traffic.Serve(traffic.Config{
			Mode:       serveModes[c.mi],
			Seed:       hseed,
			Arrivals:   arr,
			Requests:   reqPerHost,
			MaxBacklog: 2 * time.Second,
			Timeout:    750 * time.Millisecond,
			Scaler: toolstack.AutoscalerConfig{
				Min: 4, Max: 64, Horizon: 100 * time.Millisecond,
			},
		})
		if err != nil {
			return fmt.Errorf("ext-serve %s/%s/%.0f host %d: %w",
				serveModes[c.mi], servePatterns[c.pi], rates[c.ri], host, err)
		}
		if v := toolstack.Fsck(h.Env); len(v) > 0 {
			return fmt.Errorf("ext-serve %s/%s host %d: fsck: %v",
				serveModes[c.mi], servePatterns[c.pi], host, v)
		}
		stats[j] = st
		virtMS[j] = h.Clock.Now().Milliseconds()
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	// Merge the per-host histograms per cell, in fixed host order.
	merged := make([]*traffic.Stats, len(cells))
	for ci := range cells {
		m := &traffic.Stats{Mode: serveModes[cells[ci].mi]}
		for host := 0; host < hostsSim; host++ {
			m.Merge(stats[ci*hostsSim+host])
		}
		merged[ci] = m
	}

	t := metrics.NewTable("Extension: open-loop serving — per-request unikernels vs warm pools vs containers vs processes",
		"mode", "pattern", "fleet_krps",
		"p50_ms", "p99_ms", "p999_ms",
		"timeout_pct", "reject_pct", "warm_avg")
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	p99 := make(map[cell]time.Duration, len(cells))
	for ci, c := range cells {
		m := merged[ci]
		warm := 0.0
		if len(m.Warm) > 0 {
			sum := 0
			for _, w := range m.Warm {
				sum += w
			}
			warm = float64(sum) / float64(len(m.Warm))
		}
		p99[c] = m.Latency.P99()
		t.AddRow(float64(c.mi), float64(c.pi), rates[c.ri]/1000,
			ms(m.Latency.P50()), ms(m.Latency.P99()), ms(m.Latency.P999()),
			100*m.TimeoutRate(), 100*m.RejectRate(), warm)
	}

	// Headline ordering on the boot-dominated cells.
	for pi, pat := range servePatterns {
		if pat == "flash" {
			continue
		}
		vm := p99[cell{0, pi, 0}]
		pool := p99[cell{1, pi, 0}]
		pred := p99[cell{2, pi, 0}]
		ctr := p99[cell{3, pi, 0}]
		if pool >= vm || pred >= vm || vm >= ctr {
			return Result{}, fmt.Errorf(
				"ext-serve: p99 ordering broken at 10k/%s: pool %v / predictive %v vs vm %v vs container %v",
				pat, pool, pred, vm, ctr)
		}
	}

	// Shells-warm over time for the predictive burst cell: the
	// autoscaler following the synchronized bursts.
	for ci, c := range cells {
		if c.mi == 2 && servePatterns[c.pi] == "burst" && c.ri == 0 {
			w := merged[ci].Warm
			if len(w) > 8 {
				w = w[:8]
			}
			t.Note("predictive shells-warm over time (10k burst, fleet sample): %v", w)
			break
		}
	}
	t.Note("modes: 0=vm-per-request (chaos+xenstore, cold) 1=pool-reactive 2=pool-predictive (split shells) 3=container 4=process")
	t.Note("patterns: 0=poisson 1=burst (MMPP, fleet-synchronized) 2=flash (replayed trace, 4x crowd mid-run)")
	t.Note("fleet: %d hosts nominal, %d simulated per cell, %d requests/host; admission sheds past 2s backlog; client deadline 750ms",
		fleetHosts, hostsSim, reqPerHost)
	t.Note("per-request guests are real Daytime unikernels (boot stripped to guest cores, app answers verified); destruction rides the control plane")
	return Result{
		ID:        "ext-serve",
		Paper:     "extension: JIT unikernel serving beats containers at the tail; warm pools beat cold boots",
		Table:     t,
		VirtualMS: maxOf(virtMS),
		Serving:   summarizeServing(merged),
	}, nil
}
