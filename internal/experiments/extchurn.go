package experiments

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-churn", extChurn)
}

// churnRates sweeps the toolstack-crash probability per crash point;
// rate 0 anchors the undisturbed baseline.
var churnRates = []float64{0, 0.05, 0.10, 0.15, 0.20}

// churnScrubPeriods divides the cycle count into the xl scrub cadence:
// xl has no supervising daemon, so recovery runs as a periodic
// xenstore-cleanup chore rather than on every crash.
const churnScrubPeriods = 10

// churnCell is one (mode, rate) measurement.
type churnCell struct {
	p50, p99 float64
	residue  int     // stale store entries reclaimed by scrubs
	orphans  int     // leaked domains reaped
	scrubMS  float64 // mean virtual ms per recovery pass
	crashes  int
	virtMS   float64
	sites    []faults.SiteStat
}

// extChurn — long-running create/destroy churn with toolstack crashes
// (robustness extension; the paper's observation that xl leaves
// residual XenStore entries as thousands of domains come and go,
// §4.2/Fig. 5, replayed as a crash-consistency experiment). Each cycle
// creates and destroys one uniquely-named guest while
// faults.KindToolstackCrash kills the toolstack at labeled crash
// points, leaving half-built state behind. Both stacks journal their
// intent and recover by scrubbing, but the mechanism differs: chaos is
// supervised, so its restarted daemon replays the (kernel-resident,
// one-ioctl) noxs journal immediately after every crash; xl recovery
// is a periodic whole-store scan that pays a store round trip per node
// it walks. The residue, latency and scrub-cost asymmetry in the table
// emerges from those mechanisms, not from tuned constants. Every cell
// must end with zero Fsck violations after its final scrub — the
// crash-consistency guarantee is enforced, not sampled.
func extChurn(o Options) (Result, error) {
	modes := []struct {
		name string
		mode toolstack.Mode
	}{
		{"xl", toolstack.ModeXL},
		{"chaos", toolstack.ModeLightVM},
	}
	cycles := o.scaled(10000, 50)

	cells := make([]churnCell, len(modes)*len(churnRates))
	err := o.runSeries(len(cells), func(j int) error {
		mi, ri := j/len(churnRates), j%len(churnRates)
		cell, err := runCrashChurn(modes[mi].mode, churnRates[ri], o.Seed+uint64(j)*7919, cycles)
		if err != nil {
			return fmt.Errorf("ext-churn %s rate %.2f: %w", modes[mi].name, churnRates[ri], err)
		}
		cells[j] = cell
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	t := metrics.NewTable("Extension: toolstack-crash churn — residue, latency and scrub cost",
		"rate",
		"xl_p50_ms", "xl_p99_ms", "xl_residue", "xl_scrub_pass_ms",
		"chaos_p50_ms", "chaos_p99_ms", "chaos_residue", "chaos_scrub_pass_ms")
	virtMS := make([]float64, 0, len(cells))
	siteAgg := map[string]*faults.SiteStat{}
	for ri, rate := range churnRates {
		xl := cells[0*len(churnRates)+ri]
		ch := cells[1*len(churnRates)+ri]
		t.AddRow(rate,
			xl.p50, xl.p99, float64(xl.residue), xl.scrubMS,
			ch.p50, ch.p99, float64(ch.residue), ch.scrubMS)
		virtMS = append(virtMS, xl.virtMS, ch.virtMS)
	}
	for mi, m := range modes {
		crashes, orphans, residue := 0, 0, 0
		for ri := range churnRates {
			c := cells[mi*len(churnRates)+ri]
			crashes += c.crashes
			orphans += c.orphans
			residue += c.residue
			for _, st := range c.sites {
				agg := siteAgg[st.Site]
				if agg == nil {
					siteAgg[st.Site] = &faults.SiteStat{Site: st.Site, Kind: st.Kind,
						Opportunities: st.Opportunities, Injected: st.Injected}
					continue
				}
				agg.Opportunities += st.Opportunities
				agg.Injected += st.Injected
			}
		}
		t.Note("%s: %d toolstack crashes over the sweep; scrubs reaped %d leaked domains and %d stale store entries",
			m.name, crashes, orphans, residue)
	}
	t.Note("%d create/destroy cycles per cell; chaos scrubs after every crash (supervised daemon), xl scrubs every %d cycles (periodic store cleanup)",
		cycles, cycles/churnScrubPeriods)
	t.Note("residue counts store litter only: even crash-free xl sheds ~1 stale entry per cycle (the §4.2 residual-entry behavior); chaos keeps no store, so its residue is identically 0")
	t.Note("scrub_pass_ms is the mean cost of one recovery pass: xl's whole-store scan grows with the litter, chaos replays a kernel journal in O(per-domain)")
	t.Note("every cell verified: zero cross-layer Fsck violations after its final scrub")
	return Result{
		ID:         "ext-churn",
		Paper:      "robustness extension: crash-consistent lifecycle under long-running churn (§4.2's residual-entry observation)",
		Table:      t,
		VirtualMS:  maxOf(virtMS),
		CrashSites: flattenSiteAgg(siteAgg),
	}, nil
}

// flattenSiteAgg folds the per-site aggregation to the sorted slice
// Result carries (faults.SiteStat order: by site label).
func flattenSiteAgg(m map[string]*faults.SiteStat) []faults.SiteStat {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]faults.SiteStat, 0, len(keys))
	for _, k := range keys {
		out = append(out, *m[k])
	}
	return out
}

// runCrashChurn drives one (mode, rate) cell on a single host.
func runCrashChurn(mode toolstack.Mode, rate float64, seed uint64, cycles int) (churnCell, error) {
	clock := sim.NewClock()
	e := toolstack.NewEnv(clock, sched.Machine{Name: "churn-host", Cores: 4, Dom0Cores: 1, MemoryGB: 32})
	var inj *faults.Injector
	if rate > 0 {
		inj = faults.New(clock, seed, faults.Plan{Rate: rate, Kinds: []faults.Kind{faults.KindToolstackCrash}})
	}
	e.SetFaults(inj)
	drv := e.ForMode(mode)
	img := guest.Daytime()

	var creates metrics.Series
	cell := churnCell{}
	var scrubbed toolstack.ScrubReport
	passes := 0
	scrub := func() {
		scrubbed.Add(e.Scrub(mode))
		passes++
	}
	// crashed records an injected crash and runs the mode's recovery
	// policy: the supervised chaos daemon scrubs immediately; xl waits
	// for its periodic cleanup chore.
	crashed := func() {
		cell.crashes++
		if mode != toolstack.ModeXL {
			scrub()
		}
	}
	scrubEvery := cycles / churnScrubPeriods
	if scrubEvery < 1 {
		scrubEvery = 1
	}

	for i := 0; i < cycles; i++ {
		name := fmt.Sprintf("vm%05d", i)
		vm, err := drv.Create(name, img)
		switch {
		case err == nil:
			creates.AddDuration(vm.CreateTime + vm.BootTime)
			if derr := drv.Destroy(vm); derr != nil {
				if !errorsIsCrash(derr) {
					return churnCell{}, derr
				}
				crashed()
			}
		case errorsIsCrash(err):
			crashed()
		default:
			return churnCell{}, err
		}
		if mode.UsesSplit() {
			if rerr := e.Pool.Replenish(); rerr != nil {
				if !errorsIsCrash(rerr) {
					return churnCell{}, rerr
				}
				crashed()
			}
		}
		if mode == toolstack.ModeXL && (i+1)%scrubEvery == 0 {
			scrub()
		}
	}
	// Final recovery pass, then the enforced invariant audit.
	scrub()
	if v := toolstack.Fsck(e); len(v) > 0 {
		return churnCell{}, fmt.Errorf("churn left %d violations after scrub (first: %s)", len(v), v[0])
	}

	cell.p50 = creates.Percentile(50)
	cell.p99 = creates.Percentile(99)
	cell.residue = scrubbed.Residue
	cell.orphans = scrubbed.Orphans
	// Mean per recovery pass: this is where the mechanism asymmetry
	// shows — xl's pass is a whole-store scan whose cost tracks the
	// litter, chaos's is one journal ioctl plus per-domain teardown.
	cell.scrubMS = float64(scrubbed.Duration) / float64(time.Millisecond) / float64(passes)
	cell.virtMS = float64(clock.Now().Milliseconds())
	cell.sites = inj.SiteStats()
	return cell, nil
}

// errorsIsCrash matches the injected toolstack-crash sentinel.
func errorsIsCrash(err error) bool {
	return errors.Is(err, toolstack.ErrToolstackCrash)
}
