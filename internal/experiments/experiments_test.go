package experiments

import (
	"strings"
	"testing"

	"lightvm/internal/metrics"
)

// smallOpts keeps test runs quick; shapes must already hold at this
// scale.
var smallOpts = Options{Scale: 0.06, Seed: 7, Samples: 6}

func runTable(t *testing.T, id string) *metrics.Table {
	t.Helper()
	res, err := Run(id, smallOpts)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	tab, ok := res.Table.(*metrics.Table)
	if !ok {
		t.Fatalf("%s result is not a table", id)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	if res.ID != id || res.Paper == "" {
		t.Fatalf("%s metadata wrong: %+v", id, res)
	}
	return tab
}

func col(t *testing.T, tab *metrics.Table, name string) []float64 {
	t.Helper()
	v, err := tab.Column(name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig01", "fig02", "fig04", "fig05", "fig09", "fig10", "fig11",
		"fig12a", "fig12b", "fig13", "fig14", "fig15", "fig16a", "fig16b", "fig16c",
		"fig17", "fig18", "tbl-guests",
		"ext-dedup", "ext-cxenstored", "ext-icc", "ext-ukvm", "ext-clone", "ext-throughput",
		"ext-faults", "ext-churn"}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Fatalf("experiment %s not registered (have %v)", w, ids)
		}
	}
	if _, err := Run("nonesuch", smallOpts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig01Shape(t *testing.T) {
	tab := runTable(t, "fig01")
	counts := col(t, tab, "syscalls")
	if !metrics.Monotone(counts) {
		t.Fatal("syscall counts must be non-decreasing")
	}
	if counts[0] > 260 || counts[len(counts)-1] < 380 {
		t.Fatalf("range %v → %v", counts[0], counts[len(counts)-1])
	}
}

func TestFig02Linear(t *testing.T) {
	tab := runTable(t, "fig02")
	mb := col(t, tab, "image_mb")
	ms := col(t, tab, "boot_ms")
	if !metrics.Monotone(ms) {
		t.Fatal("boot time must grow with image size")
	}
	// Slope ≈ 1 ms/MB: between first and last sample.
	slope := (ms[len(ms)-1] - ms[0]) / (mb[len(mb)-1] - mb[0])
	if slope < 0.5 || slope > 2 {
		t.Fatalf("slope = %.2f ms/MB, want ≈1", slope)
	}
}

func TestFig04Ordering(t *testing.T) {
	tab := runTable(t, "fig04")
	last := tab.Rows[len(tab.Rows)-1]
	get := func(name string) float64 {
		for i, c := range tab.Columns {
			if c == name {
				return last[i]
			}
		}
		t.Fatalf("no column %s", name)
		return 0
	}
	if !(get("debian_create_ms") > get("tinyx_create_ms") && get("tinyx_create_ms") > get("unikernel_create_ms")) {
		t.Fatalf("create ordering violated: %v", last)
	}
	if !(get("debian_boot_ms") > get("tinyx_boot_ms") && get("tinyx_boot_ms") > get("unikernel_boot_ms")) {
		t.Fatalf("boot ordering violated: %v", last)
	}
	if get("process_ms") > get("docker_run_ms") {
		t.Fatalf("process slower than docker: %v", last)
	}
	// Creation grows with N for the VMs.
	deb := col(t, tab, "debian_create_ms")
	if deb[len(deb)-1] <= deb[0] {
		t.Fatal("debian creation flat")
	}
}

func TestFig05XenstoreGrowsDevicesFlat(t *testing.T) {
	tab := runTable(t, "fig05")
	xs := col(t, tab, "xenstore_ms")
	dev := col(t, tab, "devices_ms")
	if xs[len(xs)-1] <= xs[0]*1.2 {
		t.Fatalf("xenstore category flat: %v → %v", xs[0], xs[len(xs)-1])
	}
	if dev[len(dev)-1] > dev[0]*1.6 {
		t.Fatalf("devices category grew: %v → %v", dev[0], dev[len(dev)-1])
	}
}

func TestFig09OrderingAtScale(t *testing.T) {
	tab := runTable(t, "fig09")
	last := tab.Rows[len(tab.Rows)-1]
	// n, xl, chaos_xs, chaos_split, chaos_noxs, lightvm
	xl, cxs, csplit, cnoxs, lv := last[1], last[2], last[3], last[4], last[5]
	if !(xl > cxs && cxs > csplit && csplit > cnoxs && cnoxs >= lv) {
		t.Fatalf("mode ordering violated at N=%v: xl=%v cxs=%v split=%v noxs=%v lv=%v",
			last[0], xl, cxs, csplit, cnoxs, lv)
	}
	// LightVM flat: last ≤ 1.5× first.
	lvCol := col(t, tab, "lightvm_ms")
	if lvCol[len(lvCol)-1] > 1.5*lvCol[0] {
		t.Fatalf("lightvm not flat: %v → %v", lvCol[0], lvCol[len(lvCol)-1])
	}
	// xl grows markedly.
	xlCol := col(t, tab, "xl_ms")
	if xlCol[len(xlCol)-1] < 1.5*xlCol[0] {
		t.Fatalf("xl did not grow: %v → %v", xlCol[0], xlCol[len(xlCol)-1])
	}
}

func TestFig10LightVMFlatDockerGrows(t *testing.T) {
	tab := runTable(t, "fig10")
	lv := col(t, tab, "lightvm_ms")
	dk := col(t, tab, "docker_ms")
	if lv[len(lv)-1] > 2*lv[0] {
		t.Fatalf("lightvm grew on the 64-core box: %v → %v", lv[0], lv[len(lv)-1])
	}
	// Docker present at small scale (wall only at full scale) and
	// growing.
	lastD := -1.0
	for _, v := range dk {
		if v >= 0 {
			lastD = v
		}
	}
	if lastD <= dk[0] {
		t.Fatalf("docker flat: %v → %v", dk[0], lastD)
	}
}

func TestFig11TinyxClimbsUnikernelFlat(t *testing.T) {
	tab := runTable(t, "fig11")
	uni := col(t, tab, "unikernel_ms")
	tx := col(t, tab, "tinyx_ms")
	if uni[len(uni)-1] > 1.5*uni[0] {
		t.Fatalf("unikernel boots dilated: %v → %v", uni[0], uni[len(uni)-1])
	}
	if tx[len(tx)-1] <= tx[0] {
		t.Fatalf("tinyx boots flat: %v → %v", tx[0], tx[len(tx)-1])
	}
	// Ordering at every point: unikernel < tinyx.
	for i := range uni {
		if uni[i] >= tx[i] {
			t.Fatalf("unikernel ≥ tinyx at row %d", i)
		}
	}
}

func TestFig12CheckpointOrdering(t *testing.T) {
	save := runTable(t, "fig12a")
	rest := runTable(t, "fig12b")
	for _, tab := range []*metrics.Table{save, rest} {
		xl := col(t, tab, "xl_ms")
		lv := col(t, tab, "lightvm_ms")
		for i := range xl {
			if xl[i] <= lv[i] {
				t.Fatalf("%s: xl (%v) ≤ lightvm (%v) at row %d", tab.Title, xl[i], lv[i], i)
			}
		}
	}
	// Restore: xl is dramatically worse (~550 vs ~20ms).
	xl := col(t, rest, "xl_ms")
	lv := col(t, rest, "lightvm_ms")
	if xl[0] < 5*lv[0] {
		t.Fatalf("xl restore (%v) not ≫ lightvm (%v)", xl[0], lv[0])
	}
}

func TestFig13MigrationFlatForLightVM(t *testing.T) {
	tab := runTable(t, "fig13")
	lv := col(t, tab, "lightvm_ms")
	if lv[len(lv)-1] > 1.6*lv[0] {
		t.Fatalf("lightvm migration grew: %v → %v", lv[0], lv[len(lv)-1])
	}
	// chaos[XS] beats LightVM at the first (low-N) point.
	cxs := col(t, tab, "chaos_xs_ms")
	if cxs[0] >= lv[0] {
		t.Fatalf("chaos[XS] (%v) not faster than LightVM (%v) at low N", cxs[0], lv[0])
	}
}

func TestFig14MemoryOrdering(t *testing.T) {
	tab := runTable(t, "fig14")
	last := tab.Rows[len(tab.Rows)-1]
	// n, debian, tinyx, docker, minipython, process
	deb, tx, dk, mp, pr := last[1], last[2], last[3], last[4], last[5]
	if !(deb > tx && tx > mp && mp > dk && dk > pr) {
		t.Fatalf("memory ordering violated: deb=%v tx=%v docker=%v mp=%v proc=%v", deb, tx, dk, mp, pr)
	}
	// Per-instance magnitudes: debian ≈111MB, tinyx ≈30MB, docker ≈5MB.
	n := last[0]
	if per := deb / n; per < 90 || per > 140 {
		t.Fatalf("debian per-VM = %.1f MB", per)
	}
	if per := dk / n; per < 3 || per > 9 {
		t.Fatalf("docker per-container = %.1f MB", per)
	}
}

func TestFig15UtilizationOrdering(t *testing.T) {
	tab := runTable(t, "fig15")
	last := tab.Rows[len(tab.Rows)-1]
	deb, tx, uni, dk := last[1], last[2], last[3], last[4]
	if !(deb > tx && tx > uni && uni >= dk) {
		t.Fatalf("utilization ordering violated: %v", last)
	}
	deb0 := tab.Rows[0][1]
	if deb <= deb0 {
		t.Fatal("debian utilization flat")
	}
}

func TestFig16aThroughputAndRTT(t *testing.T) {
	tab := runTable(t, "fig16a")
	tput := col(t, tab, "throughput_gbps")
	rtt := col(t, tab, "rtt_ms")
	if !metrics.Monotone(tput) {
		t.Fatal("throughput must not decrease")
	}
	if !metrics.Monotone(rtt) {
		t.Fatal("RTT must grow with active VMs")
	}
}

func TestFig16bRateOrdering(t *testing.T) {
	tab := runTable(t, "fig16b")
	// Median RTT at 25ms arrivals should be small (~low tens of ms).
	r25 := col(t, tab, "rtt_25ms")
	median := r25[len(r25)/2]
	if median < 2 || median > 40 {
		t.Fatalf("median RTT @25ms = %.1f ms", median)
	}
	for _, c := range []string{"rtt_10ms", "rtt_25ms", "rtt_50ms", "rtt_100ms"} {
		vals := col(t, tab, c)
		if !metrics.Monotone(vals) {
			t.Fatalf("CDF column %s not monotone", c)
		}
	}
}

func TestFig16cPlateauAndLwipPenalty(t *testing.T) {
	tab := runTable(t, "fig16c")
	bare := col(t, tab, "bare_metal_krps")
	tinyx := col(t, tab, "tinyx_krps")
	uni := col(t, tab, "unikernel_krps")
	last := len(bare) - 1
	if bare[last] < 1.2 || bare[last] > 1.6 {
		t.Fatalf("bare-metal plateau = %.2f Kreq/s, want ≈1.4", bare[last])
	}
	if tinyx[last] > bare[last] || tinyx[last] < 0.9*bare[last] {
		t.Fatalf("tinyx (%v) should be just under bare metal (%v)", tinyx[last], bare[last])
	}
	ratio := bare[last] / uni[last]
	if ratio < 4 || ratio > 6.5 {
		t.Fatalf("unikernel penalty = %.1f×, want ≈5×", ratio)
	}
}

func TestFig17LightVMFaster(t *testing.T) {
	tab := runTable(t, "fig17")
	xs := col(t, tab, "chaos_xs_s")
	lv := col(t, tab, "lightvm_s")
	last := len(xs) - 1
	if xs[last] <= lv[last] {
		t.Fatalf("chaos[XS] (%v s) not slower than LightVM (%v s)", xs[last], lv[last])
	}
}

func TestFig18BacklogOrdering(t *testing.T) {
	tab := runTable(t, "fig18")
	xs := col(t, tab, "chaos_xs_vms")
	lv := col(t, tab, "lightvm_vms")
	last := len(xs) - 1
	if xs[last] < lv[last] {
		t.Fatalf("chaos[XS] backlog (%v) below LightVM (%v)", xs[last], lv[last])
	}
}

func TestGuestTableRendered(t *testing.T) {
	tab := runTable(t, "tbl-guests")
	if len(tab.Rows) < 10 {
		t.Fatalf("guest table rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.String(), "runtime_mb") {
		t.Fatal("render missing column")
	}
}

func TestSamplePoints(t *testing.T) {
	o := Options{Samples: 5}.normalize()
	pts := o.samplePoints(100)
	if pts[len(pts)-1] != 100 {
		t.Fatalf("last point %d", pts[len(pts)-1])
	}
	if len(pts) < 5 || len(pts) > 6 {
		t.Fatalf("points = %v", pts)
	}
	small := o.samplePoints(3)
	if len(small) != 3 || small[0] != 1 {
		t.Fatalf("small points = %v", small)
	}
}

func TestExtDedupSaves(t *testing.T) {
	tab := runTable(t, "ext-dedup")
	base := col(t, tab, "baseline_mb")
	dd := col(t, tab, "dedup_mb")
	sav := col(t, tab, "saving_pct")
	last := len(base) - 1
	if dd[last] >= base[last] {
		t.Fatalf("dedup (%v MB) not below baseline (%v MB)", dd[last], base[last])
	}
	if sav[last] < 20 || sav[last] > 80 {
		t.Fatalf("saving = %.1f%%, want a substantial fraction", sav[last])
	}
	// Both curves still grow with N (dedup shares, it doesn't erase).
	if !metrics.Monotone(dd) {
		t.Fatal("dedup curve not monotone")
	}
}

func TestExtCxenstoredSlower(t *testing.T) {
	tab := runTable(t, "ext-cxenstored")
	slow := col(t, tab, "slowdown")
	for i, v := range slow {
		if v <= 1 {
			t.Fatalf("cxenstored not slower at row %d: %v", i, v)
		}
	}
	// The gap widens with population (the C daemon's connection scan
	// has worse constants).
	if slow[len(slow)-1] <= slow[0] {
		t.Fatalf("slowdown did not widen: %v → %v", slow[0], slow[len(slow)-1])
	}
}

func TestExtICCOrdering(t *testing.T) {
	tab := runTable(t, "ext-icc")
	boot := col(t, tab, "boot_ms")
	img := col(t, tab, "image_mb")
	// rows: 0=icc, 1=tinyx, 2=unikernel
	if !(boot[0] > boot[1] && boot[1] > boot[2]) {
		t.Fatalf("boot ordering: %v", boot)
	}
	if !(img[0] > img[1] && img[1] > img[2]) {
		t.Fatalf("image ordering: %v", img)
	}
	// Paper magnitudes: ICC ≈500ms, Tinyx ≈300ms.
	if boot[0] < 350 || boot[0] > 800 {
		t.Fatalf("icc boot = %.0f ms, want ≈500", boot[0])
	}
}

func TestExtUkvmShape(t *testing.T) {
	tab := runTable(t, "ext-ukvm")
	uk := col(t, tab, "ukvm_ms")
	lv := col(t, tab, "lightvm_ms")
	last := len(uk) - 1
	// Both flat-ish (no store growth).
	if uk[last] > 1.5*uk[0] || lv[last] > 1.5*lv[0] {
		t.Fatalf("store-free toolstacks not flat: ukvm %v→%v lightvm %v→%v", uk[0], uk[last], lv[0], lv[last])
	}
	// ukvm ≈10ms per the paper's citation; LightVM below it.
	if uk[0] < 5 || uk[0] > 15 {
		t.Fatalf("ukvm boot = %.1f ms, want ≈10", uk[0])
	}
	for i := range uk {
		if lv[i] >= uk[i] {
			t.Fatalf("LightVM (%v) not below ukvm (%v) at row %d", lv[i], uk[i], i)
		}
	}
}

func TestExtThroughputShape(t *testing.T) {
	tab := runTable(t, "ext-throughput")
	tput := col(t, tab, "vms_per_sec")
	lat := col(t, tab, "latency_ms")
	// rows: xl, chaos[XS], chaos[XS+split], chaos[NoXS], LightVM
	if len(tput) != 5 {
		t.Fatalf("rows = %d", len(tput))
	}
	// xl is the slowest by both metrics; noxs modes beat store modes.
	if tput[0] >= tput[3] || tput[0] >= tput[4] {
		t.Fatalf("xl throughput not lowest: %v", tput)
	}
	if lat[4] >= lat[0] {
		t.Fatalf("LightVM latency not below xl: %v", lat)
	}
	// The split modes' throughput advantage over their non-split
	// siblings is smaller than their latency advantage.
	latGain := lat[1] / lat[2] // chaos[XS] vs +split
	tputGain := tput[2] / tput[1]
	if tputGain >= latGain {
		t.Fatalf("split throughput gain (%.2f) should trail latency gain (%.2f)", tputGain, latGain)
	}
}

func TestExtCloneWins(t *testing.T) {
	tab := runTable(t, "ext-clone")
	boot := col(t, tab, "boot_ms")
	clone := col(t, tab, "clone_ms")
	bootMB := col(t, tab, "boot_mb")
	cloneMB := col(t, tab, "clone_mb")
	for i := range boot {
		if clone[i] >= boot[i] {
			t.Fatalf("row %d: clone (%v) not faster than boot (%v)", i, clone[i], boot[i])
		}
		if cloneMB[i] >= bootMB[i] {
			t.Fatalf("row %d: clone memory (%v) not below boot (%v)", i, cloneMB[i], bootMB[i])
		}
	}
	// The win grows with guest weight: Debian's boot/clone ratio must
	// dwarf the unikernel's.
	ratioUni := boot[0] / clone[0]
	ratioDeb := boot[3] / clone[3]
	if ratioDeb <= ratioUni {
		t.Fatalf("clone win did not grow with weight: uni %.1f× deb %.1f×", ratioUni, ratioDeb)
	}
}
