package experiments

import (
	"bytes"
	"testing"
)

// TestExtServeParallelDeterminism: the serving figure renders
// byte-identical JSON no matter how many workers execute its per-host
// jobs — every host run owns its clock, RNG and arrival process, and
// the per-cell merge happens in fixed host order after the pool
// drains.
func TestExtServeParallelDeterminism(t *testing.T) {
	o := Options{Scale: 0.05, Seed: 1, Samples: 8}
	render := func(parallel int) []byte {
		o.Parallel = parallel
		res, err := Run("ext-serve", o)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return encodeGolden(t, res)
	}
	base := render(1)
	for _, p := range []int{2, 8} {
		if doc := render(p); !bytes.Equal(doc, base) {
			t.Errorf("ext-serve: output at parallel=%d differs from parallel=1\n parallel=1: %s\n parallel=%d: %s",
				p, base, p, doc)
		}
	}
}

// TestExtServeOrderingGate: the generator itself refuses to render a
// figure where the headline p99 ordering (warm pool < cold VM <
// container on boot-dominated cells) does not hold, so a successful
// run at a different seed proves the ordering is a property of the
// model, not of one lucky seed. Scale 0.3 keeps enough samples per
// cell that the p99 is out of the single-bucket noise floor.
func TestExtServeOrderingGate(t *testing.T) {
	for _, seed := range []uint64{5, 23} {
		if _, err := Run("ext-serve", Options{Scale: 0.3, Seed: seed, Samples: 8, Parallel: 0}); err != nil {
			t.Fatalf("ext-serve at seed %d: %v", seed, err)
		}
	}
}
