package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-clone", extClone)
}

// extClone — Potemkin/SnowFlock-style cloning (related work §8)
// against LightVM cold boots: instantiation latency and marginal
// memory for a fresh instance of each guest class. The paper's
// contrast: "unlike the work there, we do not require the VMs on the
// system to run the same application in order to achieve scalability"
// — cloning wins when instances ARE identical; LightVM wins
// generality.
func extClone(o Options) (Result, error) {
	images := []guest.Image{guest.Daytime(), guest.Minipython(), guest.TinyxNoop(), guest.DebianMinimal()}
	t := metrics.NewTable("Extension: cold boot vs SnowFlock-style clone",
		"idx", "boot_ms", "clone_ms", "boot_mb", "clone_mb")
	// Each guest class measures on its own host — run the four in
	// parallel and emit rows in image order afterwards.
	type cloneRow struct{ bootMS, cloneMS, bootMB, cloneMB, virtMS float64 }
	rows := make([]cloneRow, len(images))
	err := o.runSeries(len(images), func(i int) error {
		img := images[i]
		h, err := core.NewHost(sched.Machine{Name: "clone-host", Cores: 4, Dom0Cores: 1, MemoryGB: 64}, o.Seed)
		if err != nil {
			return err
		}
		mode := toolstack.ModeChaosNoXS
		parent, err := h.CreateVM(mode, "parent", img)
		if err != nil {
			return err
		}
		memBase := h.MemoryUsedBytes()
		boot, err := h.CreateVM(mode, "cold", img)
		if err != nil {
			return err
		}
		bootMB := float64(h.MemoryUsedBytes()-memBase) / (1 << 20)
		bootMS := float64(boot.CreateTime+boot.BootTime) / float64(time.Millisecond)

		// Warm the snapshot with one clone, then measure the marginal
		// clone.
		if _, err := h.CloneVM(parent, "warm"); err != nil {
			return err
		}
		memBase = h.MemoryUsedBytes()
		clone, err := h.CloneVM(parent, "fast")
		if err != nil {
			return err
		}
		cloneMB := float64(h.MemoryUsedBytes()-memBase) / (1 << 20)
		cloneMS := float64(clone.CreateTime) / float64(time.Millisecond)
		rows[i] = cloneRow{bootMS, cloneMS, bootMB, cloneMB, h.Clock.Now().Milliseconds()}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	names := ""
	virtMS := make([]float64, len(rows))
	for i, r := range rows {
		t.AddRow(float64(i), r.bootMS, r.cloneMS, r.bootMB, r.cloneMB)
		virtMS[i] = r.virtMS
		if i > 0 {
			names += ", "
		}
		names += fmt.Sprintf("%d=%s", i, images[i].Name)
	}
	t.Note("rows: %s", names)
	t.Note("related work §8 (Potemkin): clones resume instead of booting and share COW memory; the win grows with guest weight")
	return Result{ID: "ext-clone", Paper: "§8: image cloning vs LightVM's general-purpose fast boots", Table: t, VirtualMS: maxOf(virtMS)}, nil
}
