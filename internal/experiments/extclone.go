package experiments

import (
	"fmt"
	"time"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-clone", extClone)
}

// extClone — Potemkin/SnowFlock-style cloning (related work §8)
// against LightVM cold boots: instantiation latency and marginal
// memory for a fresh instance of each guest class. The paper's
// contrast: "unlike the work there, we do not require the VMs on the
// system to run the same application in order to achieve scalability"
// — cloning wins when instances ARE identical; LightVM wins
// generality.
func extClone(o Options) (Result, error) {
	images := []guest.Image{guest.Daytime(), guest.Minipython(), guest.TinyxNoop(), guest.DebianMinimal()}
	t := metrics.NewTable("Extension: cold boot vs SnowFlock-style clone",
		"idx", "boot_ms", "clone_ms", "clone_xs_ms", "boot_mb", "clone_mb")
	// Each guest class measures on its own host — run the four in
	// parallel and emit rows in image order afterwards.
	type cloneRow struct{ bootMS, cloneMS, cloneXSMS, bootMB, cloneMB, virtMS float64 }
	rows := make([]cloneRow, len(images))
	err := o.runSeries(len(images), func(i int) error {
		img := images[i]
		h, err := core.NewHost(sched.Machine{Name: "clone-host", Cores: 4, Dom0Cores: 1, MemoryGB: 64}, o.Seed)
		if err != nil {
			return err
		}
		mode := toolstack.ModeChaosNoXS
		parent, err := h.CreateVM(mode, "parent", img)
		if err != nil {
			return err
		}
		memBase := h.MemoryUsedBytes()
		boot, err := h.CreateVM(mode, "cold", img)
		if err != nil {
			return err
		}
		bootMB := float64(h.MemoryUsedBytes()-memBase) / (1 << 20)
		bootMS := float64(boot.CreateTime+boot.BootTime) / float64(time.Millisecond)

		// Warm the snapshot with one clone, then measure the marginal
		// clone.
		if _, err := h.CloneVM(parent, "warm"); err != nil {
			return err
		}
		memBase = h.MemoryUsedBytes()
		clone, err := h.CloneVM(parent, "fast")
		if err != nil {
			return err
		}
		cloneMB := float64(h.MemoryUsedBytes()-memBase) / (1 << 20)
		cloneMS := float64(clone.CreateTime) / float64(time.Millisecond)

		// Store-backed clone on its own host: same fork, but the child
		// inherits the parent's registry via an O(1) xenstore snapshot
		// graft rather than a per-entry rewrite.
		hxs, err := core.NewHost(sched.Machine{Name: "clone-host-xs", Cores: 4, Dom0Cores: 1, MemoryGB: 64}, o.Seed)
		if err != nil {
			return err
		}
		parentXS, err := hxs.CreateVM(toolstack.ModeChaosXS, "parent", img)
		if err != nil {
			return err
		}
		if _, err := hxs.CloneVM(parentXS, "warm"); err != nil {
			return err
		}
		cloneXS, err := hxs.CloneVM(parentXS, "fast")
		if err != nil {
			return err
		}
		cloneXSMS := float64(cloneXS.CreateTime) / float64(time.Millisecond)

		virt := h.Clock.Now().Milliseconds()
		if v := hxs.Clock.Now().Milliseconds(); v > virt {
			virt = v
		}
		rows[i] = cloneRow{bootMS, cloneMS, cloneXSMS, bootMB, cloneMB, virt}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	names := ""
	virtMS := make([]float64, len(rows))
	for i, r := range rows {
		t.AddRow(float64(i), r.bootMS, r.cloneMS, r.cloneXSMS, r.bootMB, r.cloneMB)
		virtMS[i] = r.virtMS
		if i > 0 {
			names += ", "
		}
		names += fmt.Sprintf("%d=%s", i, images[i].Name)
	}
	t.Note("rows: %s", names)
	t.Note("related work §8 (Potemkin): clones resume instead of booting and share COW memory; the win grows with guest weight")
	t.Note("clone_xs_ms: store-backed clone whose registry arrives via an O(1) xenstore snapshot graft")
	return Result{ID: "ext-clone", Paper: "§8: image cloning vs LightVM's general-purpose fast boots", Table: t, VirtualMS: maxOf(virtMS)}, nil
}
