//go:build linux

package experiments

import (
	"syscall"
	"unsafe"
)

// threadCPUClock identifies one OS thread's CPU-time clock. Linux
// exposes every thread's scheduler clock to the whole process by
// encoding the tid into a clockid (MAKE_THREAD_CPUCLOCK in
// linux/posix-timers.h: per-thread bit 4, clock type CPUCLOCK_SCHED 2),
// so the sampler goroutine can meter worker threads it does not run on.
type threadCPUClock int32

// currentThreadClock returns the calling thread's CPU clock handle.
// The caller must be locked to its OS thread for the handle to keep
// meaning anything.
func currentThreadClock() threadCPUClock {
	tid := syscall.Gettid()
	return threadCPUClock((^tid)<<3 | 6)
}

// read returns the thread's consumed CPU time in nanoseconds, 0 if the
// clock is unavailable (dead thread, unsupported kernel).
func (c threadCPUClock) read() int64 {
	var ts syscall.Timespec
	if _, _, errno := syscall.RawSyscall(syscall.SYS_CLOCK_GETTIME,
		uintptr(int(c)), uintptr(unsafe.Pointer(&ts)), 0); errno != 0 {
		return 0
	}
	return ts.Nano()
}
