package experiments

import (
	"fmt"

	"lightvm/internal/core"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/sched"
	"lightvm/internal/toolstack"
)

func init() {
	register("ext-dedup", extDedup)
}

// extDedup — the §9 memory-sharing extension, evaluated Fig.-14 style:
// host memory versus number of Minipython unikernels with the
// SnowFlock-style share pool off and on. The paper lists this as
// future work; we implement it and measure the saving.
func extDedup(o Options) (Result, error) {
	n := o.scaled(1000, 20)
	points := o.samplePoints(n)
	wanted := map[int]bool{}
	for _, p := range points {
		wanted[p] = true
	}
	sweep := func(dedup bool) (map[int]float64, float64, error) {
		h, err := core.NewHost(sched.Machine{Name: "dedup-host", Cores: 4, Dom0Cores: 1, MemoryGB: 64}, o.Seed)
		if err != nil {
			return nil, 0, err
		}
		h.Env.MemDedup = dedup
		base := h.MemoryUsedBytes()
		drv := h.Driver(toolstack.ModeChaosNoXS)
		out := map[int]float64{}
		for i := 1; i <= n; i++ {
			if _, err := drv.Create(fmt.Sprintf("g%d", i), guest.Minipython()); err != nil {
				return nil, 0, err
			}
			if wanted[i] {
				out[i] = float64(h.MemoryUsedBytes()-base) / (1 << 20)
			}
		}
		return out, h.Clock.Now().Milliseconds(), nil
	}
	// Off/on sweeps are independent hosts — run the pair in parallel.
	cols := make([]map[int]float64, 2)
	virtMS := make([]float64, 2)
	err := o.runSeries(2, func(i int) error {
		m, v, err := sweep(i == 1)
		cols[i], virtMS[i] = m, v
		return err
	})
	if err != nil {
		return Result{}, err
	}
	baseline, dedup := cols[0], cols[1]
	t := metrics.NewTable("Extension: memory deduplication (Minipython unikernels, MB)",
		"n", "baseline_mb", "dedup_mb", "saving_pct")
	for _, p := range points {
		saving := 0.0
		if baseline[p] > 0 {
			saving = (1 - dedup[p]/baseline[p]) * 100
		}
		t.AddRow(float64(p), baseline[p], dedup[p], saving)
	}
	t.Note("paper §9: 'LightVM does not use page sharing between VMs, assuming the worst-case scenario'; this measures the SnowFlock-style avenue it proposes")
	t.Note("model: sharers map the image-resident pages plus half of their never-written heap")
	return Result{ID: "ext-dedup", Paper: "§9 future work: dedup reduces the per-VM footprint", Table: t, VirtualMS: maxOf(virtMS)}, nil
}
