package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"lightvm/internal/metrics"
)

// marshalFaults runs ext-faults and returns the table as JSON bytes.
func marshalFaults(t *testing.T, seed uint64, parallel int) []byte {
	t.Helper()
	res, err := Run("ext-faults", Options{Scale: 0.05, Seed: seed, Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Table)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestExtFaultsDeterministicPerSeed(t *testing.T) {
	a := marshalFaults(t, 5, 1)
	b := marshalFaults(t, 5, 1)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different tables")
	}
	// Parallel execution must not perturb the result either: every
	// (mode, rate) cell owns its clock and injector.
	c := marshalFaults(t, 5, 4)
	if !bytes.Equal(a, c) {
		t.Fatal("parallel run diverged from sequential run with the same seed")
	}
	d := marshalFaults(t, 6, 1)
	if bytes.Equal(a, d) {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestExtFaultsShowsDegradationUnderFaults(t *testing.T) {
	res, err := Run("ext-faults", Options{Scale: 0.3, Seed: 1, Parallel: 0})
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := res.Table.(*metrics.Table)
	if !ok {
		t.Fatalf("table is %T", res.Table)
	}
	if len(tab.Rows) != len(faultRates) {
		t.Fatalf("got %d rows, want %d", len(tab.Rows), len(faultRates))
	}
	// Column layout: rate, xl create p50/p99, xl mig p50/p99, xl avail,
	// chaos create p50/p99, chaos mig p50/p99, chaos avail.
	const (
		colXLCreateP50 = 1
		colXLCreateP99 = 2
		colXLAvail     = 5
		colChAvail     = 10
	)
	row0 := tab.Rows[0]
	if row0[0] != 0 {
		t.Fatalf("first row rate %v, want 0", row0[0])
	}
	if row0[colXLAvail] != 100 || row0[colChAvail] != 100 {
		t.Fatalf("rate-0 availability %v/%v, want 100/100", row0[colXLAvail], row0[colChAvail])
	}
	anyOutage, anyTail := false, false
	for _, row := range tab.Rows[1:] {
		if row[colXLAvail] < 100 || row[colChAvail] < 100 {
			anyOutage = true
		}
		if row[colXLCreateP99] > row[colXLCreateP50] {
			anyTail = true
		}
	}
	if !anyOutage {
		t.Fatal("no fault rate produced availability below 100%")
	}
	if !anyTail {
		t.Fatal("no fault rate produced a p99 above p50")
	}
	// Fault pressure must show in the xl tail: the highest rate's p99
	// strictly above the undisturbed one.
	last := tab.Rows[len(tab.Rows)-1]
	if last[colXLCreateP99] <= row0[colXLCreateP99] {
		t.Fatalf("xl create p99 at max rate (%v ms) not above rate-0 (%v ms)",
			last[colXLCreateP99], row0[colXLCreateP99])
	}
}
