package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// The golden-diff helper: when a figure moves off its committed
// golden, the failure names exactly which cells moved — figure,
// column, row (with its x value), got vs want — instead of dumping two
// JSON blobs to eyeball. diffGoldenDocs is pure so it can be tested on
// synthetic documents.

// diffGoldenDocs compares two rendered golden documents and returns
// one human-readable line per difference (empty = identical). Inputs
// are the JSON bytes renderGolden produces.
func diffGoldenDocs(got, want []byte) []string {
	var g, w goldenDoc
	if err := json.Unmarshal(got, &g); err != nil {
		return []string{fmt.Sprintf("got document does not parse: %v", err)}
	}
	if err := json.Unmarshal(want, &w); err != nil {
		return []string{fmt.Sprintf("want document does not parse: %v", err)}
	}
	var diffs []string
	add := func(format string, args ...interface{}) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if g.ID != w.ID {
		add("id: got %q, want %q", g.ID, w.ID)
	}
	if g.Paper != w.Paper {
		add("paper note changed:\n  got  %q\n  want %q", g.Paper, w.Paper)
	}
	if g.Title != w.Title {
		add("title: got %q, want %q", g.Title, w.Title)
	}
	if g.VirtualMS != w.VirtualMS {
		add("virtual_ms: got %v, want %v (Δ %+g)", g.VirtualMS, w.VirtualMS, g.VirtualMS-w.VirtualMS)
	}
	if !equalStrings(g.Columns, w.Columns) {
		add("columns: got %v, want %v", g.Columns, w.Columns)
	}
	if len(g.Rows) != len(w.Rows) {
		add("row count: got %d, want %d", len(g.Rows), len(w.Rows))
	}
	// Cell-level diff over the common shape, labeling each cell by
	// column name and the row's x value (first column).
	colName := func(c int) string {
		if c < len(w.Columns) {
			return w.Columns[c]
		}
		if c < len(g.Columns) {
			return g.Columns[c]
		}
		return fmt.Sprintf("col%d", c)
	}
	for r := 0; r < len(g.Rows) && r < len(w.Rows); r++ {
		gr, wr := g.Rows[r], w.Rows[r]
		if len(gr) != len(wr) {
			add("row %d: got %d cells, want %d", r, len(gr), len(wr))
		}
		for c := 0; c < len(gr) && c < len(wr); c++ {
			if gr[c] != wr[c] {
				x := ""
				if len(wr) > 0 && c != 0 {
					x = fmt.Sprintf(" (x=%g)", wr[0])
				}
				add("column %q row %d%s: got %g, want %g (Δ %+g)",
					colName(c), r, x, gr[c], wr[c], gr[c]-wr[c])
			}
		}
	}
	if !equalStrings(g.Notes, w.Notes) {
		add("notes: got %q, want %q", g.Notes, w.Notes)
	}
	return diffs
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustGoldenJSON renders a synthetic golden document for helper tests.
func mustGoldenJSON(t *testing.T, doc goldenDoc) []byte {
	t.Helper()
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestDiffGoldenDocsIdentical(t *testing.T) {
	doc := goldenDoc{
		ID: "figX", Title: "t", Columns: []string{"n", "ms"},
		Rows: [][]float64{{1, 2.5}, {10, 3.5}}, VirtualMS: 7,
	}
	buf := mustGoldenJSON(t, doc)
	if diffs := diffGoldenDocs(buf, buf); len(diffs) != 0 {
		t.Fatalf("identical docs diffed: %v", diffs)
	}
}

func TestDiffGoldenDocsCellDiff(t *testing.T) {
	want := goldenDoc{
		ID: "figX", Title: "t", Columns: []string{"n", "save_ms", "restore_ms"},
		Rows: [][]float64{{10, 30, 20}, {40, 31, 21}},
	}
	got := want
	got.Rows = [][]float64{{10, 30, 20}, {40, 32.5, 21}}
	diffs := diffGoldenDocs(mustGoldenJSON(t, got), mustGoldenJSON(t, want))
	if len(diffs) != 1 {
		t.Fatalf("want exactly one diff, got %v", diffs)
	}
	// The line must name the column, the row, its x value and both
	// numbers — everything needed to locate the moved cell.
	for _, frag := range []string{`"save_ms"`, "row 1", "x=40", "got 32.5", "want 31", "+1.5"} {
		if !strings.Contains(diffs[0], frag) {
			t.Fatalf("diff line %q missing %q", diffs[0], frag)
		}
	}
}

func TestDiffGoldenDocsStructural(t *testing.T) {
	want := goldenDoc{
		ID: "figX", VirtualMS: 5, Columns: []string{"n", "a"},
		Rows: [][]float64{{1, 2}}, Notes: []string{"calibrated"},
	}
	got := goldenDoc{
		ID: "figY", VirtualMS: 6, Columns: []string{"n", "b"},
		Rows: [][]float64{{1, 2}, {2, 3}}, Notes: []string{"recalibrated"},
	}
	diffs := diffGoldenDocs(mustGoldenJSON(t, got), mustGoldenJSON(t, want))
	joined := strings.Join(diffs, "\n")
	for _, frag := range []string{"id:", "virtual_ms:", "columns:", "row count:", "notes:"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("structural diff missing %q:\n%s", frag, joined)
		}
	}
}

func TestDiffGoldenDocsBadJSON(t *testing.T) {
	good := mustGoldenJSON(t, goldenDoc{ID: "x"})
	if diffs := diffGoldenDocs([]byte("{nope"), good); len(diffs) != 1 || !strings.Contains(diffs[0], "does not parse") {
		t.Fatalf("bad got-doc: %v", diffs)
	}
	if diffs := diffGoldenDocs(good, []byte("{nope")); len(diffs) != 1 || !strings.Contains(diffs[0], "does not parse") {
		t.Fatalf("bad want-doc: %v", diffs)
	}
}
