//go:build !linux

package experiments

// threadCPUClock is unavailable off Linux; every read is 0, which
// makes allocSampler fall back to splitting each interval evenly among
// the jobs that have registered threads.
type threadCPUClock struct{}

func currentThreadClock() threadCPUClock { return threadCPUClock{} }

func (threadCPUClock) read() int64 { return 0 }
