// Package experiments regenerates every table and figure of the
// paper's evaluation (§4, §6, §7). Each generator builds the full
// system on a simulated testbed machine, runs the paper's workload,
// and returns a metrics.Table whose rows mirror the original plot's
// series. Figure numbers follow the paper.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"lightvm/internal/faults"
)

// defaultSamples is the x-axis measurement-point default.
const defaultSamples = 20

// Options scales an experiment run.
type Options struct {
	// Scale multiplies the paper's guest counts (1.0 = full scale,
	// e.g. 1000 VMs for Fig. 9 and 8000 for Fig. 10). Tests use small
	// scales; the bench harness runs 1.0.
	Scale float64
	// Seed drives all randomized workload choices.
	Seed uint64
	// Samples is the number of measurement points along the x axis
	// (0 = default 20).
	Samples int
	// Parallel bounds the worker pool used by RunMany and by the
	// per-figure series pool (a figure's independent hosts/timelines
	// run concurrently). 0 means GOMAXPROCS; 1 forces fully
	// sequential execution. Results are identical either way: every
	// series owns its clock, host and RNG, and output assembly is
	// deterministic.
	Parallel int
	// Shards fixes the engine worker count for figures built on the
	// sharded cluster core (ext-cluster). 0 runs the figure's default
	// sweep over worker counts {1, 2, 8} with an in-run byte-equality
	// check between them; any explicit value runs once at that count.
	// Either way the table is identical — the worker count is an
	// execution detail of the conservative engine, never a model input.
	Shards int
	// Profile selects per-figure pprof capture (CPU/heap profiles per
	// generator plus a subsystem attribution summary on Result.Profile;
	// see profile.go). Zero value = no profiling.
	Profile ProfileOptions

	// sampler attributes a parallel run's allocations to figures.
	// RunMany sets it (with samplerJob) on the per-figure Options it
	// passes down, and nested runSeries pools meter their workers
	// against it. Never set by callers.
	sampler    *allocSampler
	samplerJob int
	// profGate serializes profiled figures on parallel runs (CPU
	// profiling is process-global). RunMany creates it; never set by
	// callers.
	profGate chan struct{}
}

// normalize applies defaults.
func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Samples <= 0 {
		o.Samples = defaultSamples
	}
	return o
}

// workers resolves Parallel to a concrete pool size.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// scaled returns max(lo, round(n×Scale)).
func (o Options) scaled(n int, lo int) int {
	v := int(float64(n) * o.Scale)
	if v < lo {
		v = lo
	}
	return v
}

// samplePoints returns ~Samples x-axis counts from 1..n inclusive,
// ending exactly at n with no duplicate final point. It is safe on
// un-normalized options (Samples ≤ 0 falls back to the default) and on
// degenerate n (n ≤ 0 yields no points), so small scales interacting
// with large Samples cannot panic or repeat n.
func (o Options) samplePoints(n int) []int {
	if n <= 0 {
		return nil
	}
	samples := o.Samples
	if samples <= 0 {
		samples = defaultSamples
	}
	if n <= samples {
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	step := n / samples // ≥ 1 because n > samples
	out := make([]int, 0, samples+1)
	for v := step; v <= n; v += step {
		out = append(out, v)
	}
	if len(out) == 0 || out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

// Generator produces one figure/table.
type Generator func(Options) (Result, error)

// Result is a generated figure with its paper reference.
type Result struct {
	ID    string
	Paper string // what the paper reports, for EXPERIMENTS.md
	Table fmt.Stringer

	// VirtualMS is the figure's simulated makespan in milliseconds:
	// the largest final clock reading across the independent timelines
	// the generator built. Generators that track it set it; 0 means
	// not instrumented.
	VirtualMS float64
	// Wall is the real time the generator took (set by RunMany/RunAll).
	Wall time.Duration
	// Allocs is the number of heap allocations the generator performed:
	// exact on sequential runs (Parallel == 1), a sampling-based
	// estimate on parallel runs (Go exposes no per-goroutine allocation
	// counter — see allocSampler in runner.go).
	Allocs uint64
	// Profile is the per-figure pprof attribution report (nil unless
	// the run had Options.Profile enabled for this figure).
	Profile *ProfileSummary
	// CrashSites is the per-crash-point opportunity/injection tally,
	// aggregated across the figure's cells (nil unless the generator
	// arms faults.KindToolstackCrash).
	CrashSites []faults.SiteStat
	// Serving aggregates a traffic-serving figure's latency tail and
	// rejection breakdown (nil for non-serving figures). The bench
	// report carries it so benchdiff can gate tail regressions.
	Serving *ServingSummary
}

// registry of all experiments.
var registry = map[string]Generator{}

// register adds a generator (called from init functions).
func register(id string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = g
}

// IDs lists registered experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, o Options) (Result, error) {
	g, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return g(o.normalize())
}
