// Package experiments regenerates every table and figure of the
// paper's evaluation (§4, §6, §7). Each generator builds the full
// system on a simulated testbed machine, runs the paper's workload,
// and returns a metrics.Table whose rows mirror the original plot's
// series. Figure numbers follow the paper.
package experiments

import (
	"fmt"
	"sort"
)

// Options scales an experiment run.
type Options struct {
	// Scale multiplies the paper's guest counts (1.0 = full scale,
	// e.g. 1000 VMs for Fig. 9 and 8000 for Fig. 10). Tests use small
	// scales; the bench harness runs 1.0.
	Scale float64
	// Seed drives all randomized workload choices.
	Seed uint64
	// Samples is the number of measurement points along the x axis
	// (0 = default 20).
	Samples int
}

// normalize applies defaults.
func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Samples <= 0 {
		o.Samples = 20
	}
	return o
}

// scaled returns max(lo, round(n×Scale)).
func (o Options) scaled(n int, lo int) int {
	v := int(float64(n) * o.Scale)
	if v < lo {
		v = lo
	}
	return v
}

// samplePoints returns ~Samples x-axis counts from 1..n inclusive.
func (o Options) samplePoints(n int) []int {
	if n <= o.Samples {
		out := make([]int, n)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	step := n / o.Samples
	var out []int
	for v := step; v <= n; v += step {
		out = append(out, v)
	}
	if out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

// Generator produces one figure/table.
type Generator func(Options) (Result, error)

// Result is a generated figure with its paper reference.
type Result struct {
	ID    string
	Paper string // what the paper reports, for EXPERIMENTS.md
	Table fmt.Stringer
}

// registry of all experiments.
var registry = map[string]Generator{}

// register adds a generator (called from init functions).
func register(id string, g Generator) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = g
}

// IDs lists registered experiment identifiers in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, o Options) (Result, error) {
	g, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return g(o.normalize())
}
