package netstack

import (
	"testing"
	"time"
)

func TestEfficiency(t *testing.T) {
	if LinuxTCP.Efficiency() != 1 {
		t.Fatalf("linux efficiency = %v", LinuxTCP.Efficiency())
	}
	if e := Lwip.Efficiency(); e <= 0 || e >= 1 {
		t.Fatalf("lwip efficiency = %v", e)
	}
}

func TestRequestCostScalesInversely(t *testing.T) {
	base := 10 * time.Millisecond
	linux := LinuxTCP.RequestCost(base)
	lwip := Lwip.RequestCost(base)
	if linux != base {
		t.Fatalf("linux request cost = %v", linux)
	}
	ratio := float64(lwip) / float64(linux)
	if ratio < 4.5 || ratio > 5.5 {
		t.Fatalf("lwip/linux ratio = %.2f, want ≈5 (§7.3)", ratio)
	}
}

func TestConnSetupOrdering(t *testing.T) {
	if Lwip.ConnSetup() <= LinuxTCP.ConnSetup() {
		t.Fatal("lwip handshake should cost more CPU")
	}
	if LinuxTCP.ConnSetup() <= 0 {
		t.Fatal("zero connection cost")
	}
}

func TestStrings(t *testing.T) {
	if LinuxTCP.String() != "linux-tcp" || Lwip.String() != "lwip" {
		t.Fatal("stack names")
	}
	if Stack(99).String() == "" {
		t.Fatal("unknown stack name empty")
	}
}
