// Package netstack models the two guest network stacks the paper
// contrasts in §7.3: the Linux kernel TCP stack and the lwip stack the
// unikernels link against — "the unikernel only achieves a fifth of
// the throughput of Tinyx; this is mostly due to the inefficient lwip
// stack".
package netstack

import (
	"fmt"
	"time"

	"lightvm/internal/costs"
)

// Stack identifies a guest TCP/IP implementation.
type Stack int

// Stacks.
const (
	// LinuxTCP is the mature kernel stack (Tinyx, Debian, bare metal).
	LinuxTCP Stack = iota
	// Lwip is the embedded stack linked into Mini-OS unikernels.
	Lwip
)

func (s Stack) String() string {
	switch s {
	case LinuxTCP:
		return "linux-tcp"
	case Lwip:
		return "lwip"
	}
	return fmt.Sprintf("stack(%d)", int(s))
}

// Efficiency returns the throughput multiplier relative to Linux
// (1.0); lwip pays the §7.3 factor.
func (s Stack) Efficiency() float64 {
	if s == Lwip {
		return 1 / costs.LwipIneffFactor
	}
	return 1
}

// RequestCost inflates per-request CPU work by the stack's
// inefficiency: the same application work takes lwip longer to push
// through its protocol machinery.
func (s Stack) RequestCost(base time.Duration) time.Duration {
	return time.Duration(float64(base) / s.Efficiency())
}

// ConnSetup is the TCP three-way handshake CPU cost on this stack.
func (s Stack) ConnSetup() time.Duration {
	base := 40 * time.Microsecond
	return s.RequestCost(base)
}
