// Package profiling decodes pprof protobuf profiles and attributes
// their samples to simulator subsystems by package path. The bench
// harness uses it to turn the raw per-figure .pb.gz files written by
// runtime/pprof into the per-figure attribution report carried in
// Result.Profile (top subsystems by flat CPU time / heap bytes).
//
// The decoder is deliberately minimal: it understands exactly the
// subset of the pprof wire format that runtime/pprof emits — sample
// types, samples (with goroutine labels), locations, functions and the
// string table — and nothing else (no mappings, no line numbers, no
// symbolization). The full pprof toolchain lives outside the module
// (`go tool pprof` opens the same files); depending on
// github.com/google/pprof from the simulator would drag in a vendor
// tree for what is ~200 lines of varint walking.
package profiling

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// ValueType names one sample value dimension (e.g. cpu/nanoseconds,
// alloc_space/bytes).
type ValueType struct {
	Type string
	Unit string
}

// Sample is one stack sample: the leaf-first location stack, one value
// per sample type, and any goroutine labels in effect when it was
// taken.
type Sample struct {
	// LocationIDs is the call stack, leaf first (pprof convention).
	LocationIDs []uint64
	// Values holds one value per Profile.SampleTypes entry.
	Values []int64
	// Labels are the sample's string-valued pprof labels (CPU profiles
	// only; the runtime does not label memory profiles).
	Labels map[string]string
}

// Label returns the sample's value for a string label key ("" if
// absent).
func (s *Sample) Label(key string) string { return s.Labels[key] }

// location is the decoded subset of a pprof Location: its innermost
// (leaf-most inline) function.
type location struct {
	id     uint64
	funcID uint64 // leaf line's function; 0 if the location has no lines
}

// function is the decoded subset of a pprof Function.
type function struct {
	id   uint64
	name string
}

// Profile is a decoded pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	DurationNanos int64
	Period        int64
	PeriodType    ValueType

	locations map[uint64]location
	functions map[uint64]function
}

// Parse decodes a pprof profile. The input may be gzipped (as
// runtime/pprof writes it) or raw protobuf.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profiling: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profiling: gunzip: %w", err)
		}
		data = raw
	}
	p := &Profile{
		locations: make(map[uint64]location),
		functions: make(map[uint64]function),
	}
	var strTable []string
	// First pass: the string table must be complete before labels and
	// value types can be resolved, so collect raw sub-messages first.
	var rawSampleTypes, rawSamples, rawLocations, rawFunctions [][]byte
	var rawPeriodType []byte
	err := walkFields(data, func(field int, v uint64, msg []byte) error {
		switch field {
		case 1:
			rawSampleTypes = append(rawSampleTypes, msg)
		case 2:
			rawSamples = append(rawSamples, msg)
		case 4:
			rawLocations = append(rawLocations, msg)
		case 5:
			rawFunctions = append(rawFunctions, msg)
		case 6:
			strTable = append(strTable, string(msg))
		case 10:
			p.DurationNanos = int64(v)
		case 11:
			rawPeriodType = msg
		case 12:
			p.Period = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	str := func(i uint64) string {
		if i < uint64(len(strTable)) {
			return strTable[i]
		}
		return ""
	}
	parseValueType := func(msg []byte) (ValueType, error) {
		var vt ValueType
		err := walkFields(msg, func(field int, v uint64, _ []byte) error {
			switch field {
			case 1:
				vt.Type = str(v)
			case 2:
				vt.Unit = str(v)
			}
			return nil
		})
		return vt, err
	}
	for _, msg := range rawSampleTypes {
		vt, err := parseValueType(msg)
		if err != nil {
			return nil, fmt.Errorf("profiling: sample_type: %w", err)
		}
		p.SampleTypes = append(p.SampleTypes, vt)
	}
	if rawPeriodType != nil {
		vt, err := parseValueType(rawPeriodType)
		if err != nil {
			return nil, fmt.Errorf("profiling: period_type: %w", err)
		}
		p.PeriodType = vt
	}
	for _, msg := range rawFunctions {
		var fn function
		err := walkFields(msg, func(field int, v uint64, _ []byte) error {
			switch field {
			case 1:
				fn.id = v
			case 2:
				fn.name = str(v)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("profiling: function: %w", err)
		}
		p.functions[fn.id] = fn
	}
	for _, msg := range rawLocations {
		var loc location
		sawLine := false
		err := walkFields(msg, func(field int, v uint64, sub []byte) error {
			switch field {
			case 1:
				loc.id = v
			case 4:
				// Line; the first entry is the innermost inline frame.
				if sawLine {
					return nil
				}
				sawLine = true
				return walkFields(sub, func(f int, lv uint64, _ []byte) error {
					if f == 1 {
						loc.funcID = lv
					}
					return nil
				})
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("profiling: location: %w", err)
		}
		p.locations[loc.id] = loc
	}
	for _, msg := range rawSamples {
		var s Sample
		err := walkFields(msg, func(field int, v uint64, sub []byte) error {
			switch field {
			case 1:
				if sub != nil {
					ids, err := packedUvarints(sub)
					if err != nil {
						return err
					}
					s.LocationIDs = append(s.LocationIDs, ids...)
				} else {
					s.LocationIDs = append(s.LocationIDs, v)
				}
			case 2:
				if sub != nil {
					vals, err := packedUvarints(sub)
					if err != nil {
						return err
					}
					for _, u := range vals {
						s.Values = append(s.Values, int64(u))
					}
				} else {
					s.Values = append(s.Values, int64(v))
				}
			case 3:
				var key, val string
				err := walkFields(sub, func(f int, lv uint64, _ []byte) error {
					switch f {
					case 1:
						key = str(lv)
					case 2:
						val = str(lv)
					}
					return nil
				})
				if err != nil {
					return err
				}
				if val != "" {
					if s.Labels == nil {
						s.Labels = make(map[string]string)
					}
					s.Labels[key] = val
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("profiling: sample: %w", err)
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// ParseFile reads and decodes a profile written by runtime/pprof.
func ParseFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// SampleType returns the index of the named sample value (e.g. "cpu",
// "alloc_space"), or -1 if the profile does not carry it.
func (p *Profile) SampleType(name string) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == name {
			return i
		}
	}
	return -1
}

// LeafFunction resolves a sample's leaf (innermost) function name; ""
// when the stack is empty or unsymbolized.
func (p *Profile) LeafFunction(s *Sample) string {
	if len(s.LocationIDs) == 0 {
		return ""
	}
	loc, ok := p.locations[s.LocationIDs[0]]
	if !ok {
		return ""
	}
	return p.functions[loc.funcID].name
}

// Flat charges each sample's vi-th value to its leaf function and
// returns the per-function totals. A nil keep includes every sample;
// otherwise only samples keep returns true for are counted (used to
// restrict a CPU profile to one figure's goroutine-label slice).
func (p *Profile) Flat(vi int, keep func(*Sample) bool) map[string]int64 {
	out := make(map[string]int64)
	if vi < 0 {
		return out
	}
	for i := range p.Samples {
		s := &p.Samples[i]
		if vi >= len(s.Values) {
			continue
		}
		if keep != nil && !keep(s) {
			continue
		}
		name := p.LeafFunction(s)
		if name == "" {
			name = "(unknown)"
		}
		out[name] += s.Values[vi]
	}
	return out
}

// Total sums the vi-th value over the kept samples (nil keep = all).
func (p *Profile) Total(vi int, keep func(*Sample) bool) int64 {
	var total int64
	if vi < 0 {
		return 0
	}
	for i := range p.Samples {
		s := &p.Samples[i]
		if vi >= len(s.Values) {
			continue
		}
		if keep != nil && !keep(s) {
			continue
		}
		total += s.Values[vi]
	}
	return total
}

// walkFields iterates a protobuf message's fields. For varint fields
// the callback receives the value in v (msg nil); for length-delimited
// fields it receives the bytes in msg (v 0). Fixed32/fixed64 fields are
// skipped (the pprof schema runtime/pprof emits has none we need).
func walkFields(buf []byte, fn func(field int, v uint64, msg []byte) error) error {
	for pos := 0; pos < len(buf); {
		key, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return fmt.Errorf("bad field key at offset %d", pos)
		}
		pos += n
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0: // varint
			v, n := binary.Uvarint(buf[pos:])
			if n <= 0 {
				return fmt.Errorf("bad varint in field %d", field)
			}
			pos += n
			if err := fn(field, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if pos+8 > len(buf) {
				return fmt.Errorf("truncated fixed64 in field %d", field)
			}
			pos += 8
		case 2: // length-delimited
			l, n := binary.Uvarint(buf[pos:])
			if n <= 0 || pos+n+int(l) > len(buf) {
				return fmt.Errorf("bad length in field %d", field)
			}
			pos += n
			if err := fn(field, 0, buf[pos:pos+int(l)]); err != nil {
				return err
			}
			pos += int(l)
		case 5: // fixed32
			if pos+4 > len(buf) {
				return fmt.Errorf("truncated fixed32 in field %d", field)
			}
			pos += 4
		default:
			return fmt.Errorf("unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

// packedUvarints decodes a packed repeated varint payload.
func packedUvarints(buf []byte) ([]uint64, error) {
	var out []uint64
	for pos := 0; pos < len(buf); {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("bad packed varint at offset %d", pos)
		}
		out = append(out, v)
		pos += n
	}
	return out, nil
}
