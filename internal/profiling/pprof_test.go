package profiling

import (
	"bytes"
	"context"
	"encoding/binary"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// --- end-to-end against runtime/pprof output ---

// spin burns CPU until deadline so the profiler has something to
// sample.
//
//go:noinline
func spin(d time.Duration) float64 {
	deadline := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 1e4; i++ {
			x = x*1.000000001 + 0.000001
		}
	}
	return x
}

func TestParseCPUProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU profile capture needs real wall time")
	}
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Fatalf("start cpu profile: %v", err)
	}
	// Labeled and unlabeled work, to exercise label filtering.
	pprof.Do(context.Background(), pprof.Labels("figure", "figTest"), func(context.Context) {
		spin(250 * time.Millisecond)
	})
	spin(100 * time.Millisecond)
	pprof.StopCPUProfile()

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cpu := p.SampleType("cpu")
	if cpu < 0 {
		t.Fatalf("no cpu sample type in %v", p.SampleTypes)
	}
	if p.Period <= 0 || p.PeriodType.Type != "cpu" {
		t.Errorf("period = %d, period type = %+v", p.Period, p.PeriodType)
	}
	total := p.Total(cpu, nil)
	if total <= 0 {
		t.Fatal("no cpu samples captured (machine too slow or profiler broken)")
	}
	labeled := p.Total(cpu, func(s *Sample) bool { return s.Label("figure") == "figTest" })
	if labeled <= 0 {
		t.Fatal("no samples carry the figure label")
	}
	if labeled > total {
		t.Fatalf("labeled %d > total %d", labeled, total)
	}
	// The busy loop should dominate the labeled slice and resolve to
	// this package's spin function.
	flat := p.Flat(cpu, func(s *Sample) bool { return s.Label("figure") == "figTest" })
	var spinNS int64
	for fn, v := range flat {
		if strings.HasSuffix(fn, "profiling.spin") {
			spinNS += v
		}
	}
	if spinNS == 0 {
		t.Fatalf("spin not the leaf of any labeled sample; flat = %v", flat)
	}
}

// allocForProfile allocates n bytes in chunks so heap profiles carry
// this frame as the allocation site.
//
//go:noinline
func allocForProfile(n int) [][]byte {
	var keep [][]byte
	for i := 0; i < n/(64<<10); i++ {
		keep = append(keep, make([]byte, 64<<10))
	}
	return keep
}

func TestParseHeapProfile(t *testing.T) {
	old := runtime.MemProfileRate
	runtime.MemProfileRate = 16 << 10
	defer func() { runtime.MemProfileRate = old }()

	sink := allocForProfile(8 << 20)
	runtime.GC() // flush recent allocations into the profile
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatalf("write heap profile: %v", err)
	}
	_ = sink

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ai := p.SampleType("alloc_space")
	if ai < 0 {
		t.Fatalf("no alloc_space sample type in %v", p.SampleTypes)
	}
	flat := p.Flat(ai, nil)
	var allocB int64
	for fn, v := range flat {
		if strings.HasSuffix(fn, "profiling.allocForProfile") {
			allocB += v
		}
	}
	// 8 MB allocated at a 16 KB sampling rate: the site cannot be
	// missed, though the sampled value is approximate.
	if allocB < 1<<20 {
		t.Fatalf("allocForProfile charged only %d bytes; flat = %v", allocB, flat)
	}
}

// --- decoder unit tests on hand-encoded messages ---

// protoBuf is a minimal protobuf writer for constructing test
// profiles.
type protoBuf struct{ bytes.Buffer }

func (b *protoBuf) varint(field int, v uint64) {
	b.key(field, 0)
	b.uvarint(v)
}

func (b *protoBuf) msg(field int, body []byte) {
	b.key(field, 2)
	b.uvarint(uint64(len(body)))
	b.Write(body)
}

func (b *protoBuf) str(field int, s string) { b.msg(field, []byte(s)) }

func (b *protoBuf) key(field, wire int) { b.uvarint(uint64(field<<3 | wire)) }

func (b *protoBuf) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

// buildTestProfile encodes a one-sample profile by hand, using packed
// repeated fields for the sample (as runtime/pprof does) and a label.
func buildTestProfile(t *testing.T) []byte {
	t.Helper()
	var p protoBuf
	// string_table: index 0 must be "".
	for _, s := range []string{"", "cpu", "nanoseconds", "lightvm/internal/sched.(*CPU).Tick", "figure", "fig42"} {
		p.str(6, s)
	}
	var vt protoBuf
	vt.varint(1, 1) // type = "cpu"
	vt.varint(2, 2) // unit = "nanoseconds"
	p.msg(1, vt.Bytes())
	var fn protoBuf
	fn.varint(1, 7) // function id
	fn.varint(2, 3) // name
	p.msg(5, fn.Bytes())
	var line protoBuf
	line.varint(1, 7) // function_id
	var loc protoBuf
	loc.varint(1, 9) // location id
	loc.msg(4, line.Bytes())
	p.msg(4, loc.Bytes())
	var label protoBuf
	label.varint(1, 4) // key = "figure"
	label.varint(2, 5) // str = "fig42"
	var sample protoBuf
	var packedLocs protoBuf
	packedLocs.uvarint(9)
	sample.msg(1, packedLocs.Bytes()) // packed location_id
	var packedVals protoBuf
	packedVals.uvarint(12345)
	sample.msg(2, packedVals.Bytes()) // packed value
	sample.msg(3, label.Bytes())
	p.msg(2, sample.Bytes())
	// A second sample with unpacked (wire-type-0) encoding.
	var sample2 protoBuf
	sample2.varint(1, 9)
	sample2.varint(2, 55)
	p.msg(2, sample2.Bytes())
	p.varint(12, 10000000) // period
	return p.Bytes()
}

func TestParseHandEncoded(t *testing.T) {
	p, err := Parse(buildTestProfile(t))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(p.SampleTypes) != 1 || p.SampleTypes[0] != (ValueType{"cpu", "nanoseconds"}) {
		t.Fatalf("sample types = %+v", p.SampleTypes)
	}
	if len(p.Samples) != 2 {
		t.Fatalf("samples = %d", len(p.Samples))
	}
	if got := p.Samples[0].Label("figure"); got != "fig42" {
		t.Fatalf("label = %q", got)
	}
	if p.LeafFunction(&p.Samples[0]) != "lightvm/internal/sched.(*CPU).Tick" {
		t.Fatalf("leaf = %q", p.LeafFunction(&p.Samples[0]))
	}
	if p.Samples[1].Values[0] != 55 || p.Samples[1].LocationIDs[0] != 9 {
		t.Fatalf("unpacked sample = %+v", p.Samples[1])
	}
	flat := p.Flat(0, nil)
	if flat["lightvm/internal/sched.(*CPU).Tick"] != 12345+55 {
		t.Fatalf("flat = %v", flat)
	}
	if p.Period != 10000000 {
		t.Fatalf("period = %d", p.Period)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte{0x1f, 0x8b, 0xff}); err == nil {
		t.Fatal("truncated gzip accepted")
	}
	// Wire type 2 with a length past the buffer end.
	if _, err := Parse([]byte{0x12, 0x7f, 0x01}); err == nil {
		t.Fatal("truncated message accepted")
	}
}

func TestFlatBadIndex(t *testing.T) {
	p, err := Parse(buildTestProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Flat(-1, nil); len(got) != 0 {
		t.Fatalf("Flat(-1) = %v", got)
	}
	if got := p.Total(7, nil); got != 0 {
		t.Fatalf("Total(out of range) = %d", got)
	}
	if p.SampleType("alloc_space") != -1 {
		t.Fatal("phantom sample type found")
	}
}
