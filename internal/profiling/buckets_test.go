package profiling

import (
	"reflect"
	"testing"
)

func TestSubsystem(t *testing.T) {
	cases := []struct{ fn, want string }{
		{"lightvm/internal/xenstore.(*Store).Write", "internal/xenstore"},
		{"lightvm/internal/sched.(*CPU).Run.func1", "internal/sched"},
		{"lightvm/internal/sim.(*Clock).Sleep", "internal/sim"},
		{"lightvm.RunExperiments", "lightvm"},
		{"runtime.mallocgc", "runtime"},
		{"runtime/pprof.StartCPUProfile", "runtime"},
		{"encoding/json.Marshal", "std"},
		{"sync.(*Mutex).Lock", "std"},
		{"github.com/some/dep.Fn", "other"},
		{"memeqbody", "other"}, // unqualified assembly symbol
		{"(unknown)", "other"},
		{"", "other"},
	}
	for _, c := range cases {
		if got := Subsystem(c.fn); got != c.want {
			t.Errorf("Subsystem(%q) = %q, want %q", c.fn, got, c.want)
		}
	}
}

func TestPackageOf(t *testing.T) {
	cases := []struct{ fn, want string }{
		{"lightvm/internal/xenstore.glob..func1", "lightvm/internal/xenstore"},
		{"runtime.gcBgMarkWorker", "runtime"},
		{"example.com/mod/pkg.(*T).M", "example.com/mod/pkg"},
		{"lightvm/internal/noxs", "lightvm/internal/noxs"}, // no dot after last slash
		{"plainsymbol", ""},
	}
	for _, c := range cases {
		if got := packageOf(c.fn); got != c.want {
			t.Errorf("packageOf(%q) = %q, want %q", c.fn, got, c.want)
		}
	}
}

func TestSubsystemTotalsAndTop(t *testing.T) {
	flat := map[string]int64{
		"lightvm/internal/xenstore.(*Store).Write": 60,
		"lightvm/internal/xenstore.(*tx).Commit":   20,
		"lightvm/internal/sched.(*CPU).Tick":       40,
		"runtime.mallocgc":                         30,
		"encoding/json.Marshal":                    10,
		"lightvm/internal/sim.(*Clock).Advance":    40,
	}
	totals := SubsystemTotals(flat)
	if totals["internal/xenstore"] != 80 {
		t.Fatalf("xenstore total = %d, want 80", totals["internal/xenstore"])
	}
	top := TopSubsystems(totals, 3)
	if len(top) != 3 {
		t.Fatalf("top-3 has %d entries", len(top))
	}
	if top[0].Subsystem != "internal/xenstore" || top[0].Value != 80 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	// 40/40 tie between sched and sim breaks alphabetically.
	if top[1].Subsystem != "internal/sched" || top[2].Subsystem != "internal/sim" {
		t.Fatalf("tie order: %+v %+v", top[1], top[2])
	}
	// Percent is the share of the grand total (200), not of the top-3.
	if top[0].Percent != 40 {
		t.Fatalf("top[0].Percent = %v, want 40", top[0].Percent)
	}
}

func TestTopSubsystemsDropsNonPositive(t *testing.T) {
	top := TopSubsystems(map[string]int64{"a": 0, "b": -5, "c": 10}, 5)
	if len(top) != 1 || top[0].Subsystem != "c" || top[0].Percent != 100 {
		t.Fatalf("top = %+v", top)
	}
	if got := TopSubsystems(nil, 5); len(got) != 0 {
		t.Fatalf("empty totals gave %+v", got)
	}
}

func TestDeltaFlat(t *testing.T) {
	after := map[string]int64{"f": 100, "g": 50, "h": 7}
	before := map[string]int64{"f": 40, "g": 50, "z": 3}
	got := DeltaFlat(after, before)
	want := map[string]int64{"f": 60, "h": 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DeltaFlat = %v, want %v", got, want)
	}
}

func TestTopFunctions(t *testing.T) {
	flat := map[string]int64{
		"lightvm/internal/xenstore.(*pool).getNode":   120,
		"lightvm/internal/xenstore.(*snapReader).str": 60,
		"lightvm/internal/xenstore.init.func1":        10, // intern table build
		"runtime.mallocgc":                            10,
		"dead":                                        0,
	}
	top := TopFunctions(flat, 3)
	if len(top) != 3 {
		t.Fatalf("top-3 has %d entries: %+v", len(top), top)
	}
	if top[0].Function != "lightvm/internal/xenstore.(*pool).getNode" || top[0].Value != 120 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	// Percent is the share of the grand total (200), not of the top-3.
	if top[0].Percent != 60 {
		t.Fatalf("top[0].Percent = %v, want 60", top[0].Percent)
	}
	// The store's pool and intern-table symbols bill to the xenstore
	// bucket like the rest of the package.
	for _, fc := range top[:2] {
		if fc.Subsystem != "internal/xenstore" {
			t.Fatalf("%s billed to %q, want internal/xenstore", fc.Function, fc.Subsystem)
		}
	}
	// 10/10 tie between the intern-table init and mallocgc breaks on
	// the function name.
	if top[2].Function != "lightvm/internal/xenstore.init.func1" || top[2].Subsystem != "internal/xenstore" {
		t.Fatalf("top[2] = %+v", top[2])
	}
}
