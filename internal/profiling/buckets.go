package profiling

import (
	"sort"
	"strings"
)

// The symbol-bucket report: samples are mapped onto simulator
// subsystems by the package path of their leaf function, so a raw
// profile ("40% of cycles in mallocgc, 12% in tx.Commit") becomes an
// attribution statement ("fig12a spends most of its simulator CPU in
// internal/xenstore"). Buckets follow the repo layout: every
// lightvm/internal/<pkg> is its own subsystem, the facade package is
// "lightvm", the Go runtime (GC, scheduler, allocator) is "runtime",
// the rest of the standard library is "std", and anything else —
// unsymbolized frames included — is "other".

// Cost is one subsystem's share of a profile dimension.
type Cost struct {
	// Subsystem is the bucket name (e.g. "internal/xenstore").
	Subsystem string `json:"subsystem"`
	// Value is the bucket's flat total in the profile's unit
	// (nanoseconds for CPU, bytes for heap).
	Value int64 `json:"value"`
	// Percent is Value's share of the profile total (0–100).
	Percent float64 `json:"percent"`
}

// Subsystem maps a fully-qualified Go function name (as pprof reports
// it, e.g. "lightvm/internal/xenstore.(*Store).Write") to its bucket.
func Subsystem(fn string) string {
	pkg := packageOf(fn)
	switch {
	case pkg == "":
		return "other"
	case strings.HasPrefix(pkg, "lightvm/internal/"):
		return strings.TrimPrefix(pkg, "lightvm/")
	case pkg == "lightvm" || strings.HasPrefix(pkg, "lightvm/"):
		return "lightvm"
	case pkg == "runtime" || strings.HasPrefix(pkg, "runtime/"):
		return "runtime"
	case !strings.Contains(firstPathElem(pkg), "."):
		// Import paths without a dotted first element are standard
		// library (encoding/json, os, sync, ...).
		return "std"
	default:
		return "other"
	}
}

// packageOf extracts the package import path from a function symbol:
// everything up to the first '.' after the last '/'. Symbols without a
// package qualifier (assembly stubs like "memeqbody") map to "".
func packageOf(fn string) string {
	slash := strings.LastIndexByte(fn, '/')
	dot := strings.IndexByte(fn[slash+1:], '.')
	if dot < 0 {
		if slash < 0 {
			return "" // unqualified symbol
		}
		return fn
	}
	return fn[:slash+1+dot]
}

// firstPathElem returns the import path's first element.
func firstPathElem(pkg string) string {
	if i := strings.IndexByte(pkg, '/'); i >= 0 {
		return pkg[:i]
	}
	return pkg
}

// SubsystemTotals folds per-function flat totals into per-subsystem
// totals.
func SubsystemTotals(flat map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for fn, v := range flat {
		out[Subsystem(fn)] += v
	}
	return out
}

// TopSubsystems ranks subsystem totals and returns the top n (value
// descending, name ascending on ties — deterministic for goldens and
// JSON diffs). Percent is each bucket's share of the grand total;
// zero- and negative-valued buckets are dropped.
func TopSubsystems(totals map[string]int64, n int) []Cost {
	var grand int64
	out := make([]Cost, 0, len(totals))
	for sub, v := range totals {
		if v <= 0 {
			continue
		}
		grand += v
		out = append(out, Cost{Subsystem: sub, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Subsystem < out[j].Subsystem
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	for i := range out {
		out[i].Percent = 100 * float64(out[i].Value) / float64(grand)
	}
	return out
}

// FuncCost is one function's share of a profile dimension, with its
// subsystem bucket attached so a reader can tie a hot allocation site
// back to the layer it bills to (the xenstore intern and pool tables,
// for instance, land in "internal/xenstore" like the rest of the
// store).
type FuncCost struct {
	// Function is the fully-qualified symbol as pprof reports it.
	Function string `json:"function"`
	// Subsystem is Subsystem(Function).
	Subsystem string `json:"subsystem"`
	// Value is the function's flat total in the profile's unit.
	Value int64 `json:"value"`
	// Percent is Value's share of the profile total (0–100).
	Percent float64 `json:"percent"`
}

// TopFunctions ranks per-function flat totals and returns the top n
// (value descending, name ascending on ties — deterministic for JSON
// diffs). Percent is each function's share of the grand total across
// ALL functions, not just the returned ones; zero- and negative-valued
// entries are dropped.
func TopFunctions(flat map[string]int64, n int) []FuncCost {
	var grand int64
	out := make([]FuncCost, 0, len(flat))
	for fn, v := range flat {
		if v <= 0 {
			continue
		}
		grand += v
		out = append(out, FuncCost{Function: fn, Subsystem: Subsystem(fn), Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Function < out[j].Function
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	for i := range out {
		out[i].Percent = 100 * float64(out[i].Value) / float64(grand)
	}
	return out
}

// DeltaFlat subtracts per-function baselines from per-function totals,
// clamping at zero — how a figure's heap attribution is isolated from
// allocations made before its run (alloc_space is cumulative for the
// process).
func DeltaFlat(after, before map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(after))
	for fn, v := range after {
		if d := v - before[fn]; d > 0 {
			out[fn] = d
		}
	}
	return out
}
