// Package xenbus implements Xen's split-driver device model over the
// XenStore (paper Fig. 7a): the toolstack announces a new device by
// writing frontend and backend entries; the backend — watching its
// store directory — allocates an event channel and grant reference and
// writes them back; the booting guest's frontend reads them, maps the
// grant, binds the channel and moves to Connected.
//
// This is the baseline ("XenStore") device path that noxs replaces.
package xenbus

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/devd"
	"lightvm/internal/faults"
	"lightvm/internal/hv"
	"lightvm/internal/sim"
	"lightvm/internal/xenstore"
)

// Errors.
var (
	// ErrDeviceTimeout is the degradation terminus of the split-driver
	// handshake: the backend never reached InitWait despite the
	// toolstack's re-attach attempts.
	ErrDeviceTimeout = errors.New("xenbus: device handshake timed out")
	// ErrBadEntry marks a malformed store entry (unparsable
	// event-channel or grant-ref) on the frontend connect path.
	ErrBadEntry = errors.New("xenbus: malformed store entry")
	// ErrBackendGone marks a backend whose store state vanished while
	// the handshake was in flight.
	ErrBackendGone = errors.New("xenbus: backend state vanished")
)

// XenbusState values, as written to the store's state nodes.
const (
	StateUnknown      = 0
	StateInitialising = 1
	StateInitWait     = 2
	StateInitialised  = 3
	StateConnected    = 4
	StateClosing      = 5
	StateClosed       = 6
)

// KindName maps device kinds to their store directory names ("vif",
// "vbd", "console") — exported so the scrubber can walk the backend
// directories the same way the toolstack laid them out.
func KindName(k hv.DevKind) string { return kindName(k) }

// FrontendWatchToken is the token a running frontend registers its
// backend-directory watch under; the scrubber unhooks dead guests'
// watches by this token.
func FrontendWatchToken(dom hv.DomID, kind hv.DevKind, idx int) string {
	buf := make([]byte, 0, 24)
	buf = append(buf, "fe-"...)
	buf = strconv.AppendInt(buf, int64(dom), 10)
	buf = append(buf, '-')
	buf = append(buf, kindName(kind)...)
	buf = append(buf, '-')
	buf = strconv.AppendInt(buf, int64(idx), 10)
	return string(buf)
}

// kindName maps device kinds to their store directory names.
func kindName(k hv.DevKind) string {
	switch k {
	case hv.DevVif:
		return "vif"
	case hv.DevVbd:
		return "vbd"
	case hv.DevConsole:
		return "console"
	case hv.DevSysctl:
		return "sysctl"
	}
	return "unknown"
}

// DomainPath returns a domain's store root, "/local/domain/<id>".
func DomainPath(dom hv.DomID) string {
	buf := make([]byte, 0, 24)
	buf = append(buf, "/local/domain/"...)
	buf = strconv.AppendInt(buf, int64(dom), 10)
	return string(buf)
}

// FrontendPath returns the guest-side store directory for a device.
func FrontendPath(dom hv.DomID, kind hv.DevKind, idx int) string {
	buf := make([]byte, 0, 48)
	buf = append(buf, "/local/domain/"...)
	buf = strconv.AppendInt(buf, int64(dom), 10)
	buf = append(buf, "/device/"...)
	buf = append(buf, kindName(kind)...)
	buf = append(buf, '/')
	buf = strconv.AppendInt(buf, int64(idx), 10)
	return string(buf)
}

// BackendPath returns the Dom0-side store directory for a device.
func BackendPath(dom hv.DomID, kind hv.DevKind, idx int) string {
	buf := make([]byte, 0, 48)
	buf = append(buf, "/local/domain/0/backend/"...)
	buf = append(buf, kindName(kind)...)
	buf = append(buf, '/')
	buf = strconv.AppendInt(buf, int64(dom), 10)
	buf = append(buf, '/')
	buf = strconv.AppendInt(buf, int64(idx), 10)
	return string(buf)
}

// vifName is the hotplug interface name "vif<dom>.<idx>".
func vifName(dom, idx int) string {
	buf := make([]byte, 0, 16)
	buf = append(buf, "vif"...)
	buf = strconv.AppendInt(buf, int64(dom), 10)
	buf = append(buf, '.')
	buf = strconv.AppendInt(buf, int64(idx), 10)
	return string(buf)
}

// DeviceReq describes a device the toolstack wants to create.
type DeviceReq struct {
	Kind hv.DevKind
	Dom  hv.DomID
	Idx  int
	MAC  string // vif only
}

// Backend is a Dom0 backend driver (netback/blkback) for one device
// kind. It watches its backend subtree and completes device setup
// asynchronously — as the real netback does — so backend work from a
// previous creation can overlap the next one's transactions.
type Backend struct {
	Kind    hv.DevKind
	HV      *hv.Hypervisor
	Store   *xenstore.Store
	Clock   *sim.Clock
	Hotplug devd.Hotplug

	// DevicesSetUp counts completed device initializations.
	DevicesSetUp int
	// StallsInjected counts handshake announcements the fault plane
	// made this backend drop (the toolstack recovers via re-attach).
	StallsInjected int
}

// NewBackend registers a backend for kind: it places the watch on
// /local/domain/0/backend/<kind> exactly as netback does at start-up.
func NewBackend(kind hv.DevKind, h *hv.Hypervisor, s *xenstore.Store, hp devd.Hotplug) *Backend {
	b := &Backend{Kind: kind, HV: h, Store: s, Clock: h.Clock, Hotplug: hp}
	root := "/local/domain/0/backend/" + kindName(kind)
	s.Mkdir(root)
	s.Watch(root, "backend-"+kindName(kind), b.onWatch)
	return b
}

// onWatch reacts to toolstack writes announcing a new device: when the
// state node appears at Initialising, schedule backend processing.
func (b *Backend) onWatch(path, _ string) {
	if len(path) < 6 || path[len(path)-6:] != "/state" {
		return
	}
	v, err := b.Store.Read(path)
	if err != nil || v != strconv.Itoa(StateInitialising) {
		return
	}
	if b.Store.Faults.Fire(faults.KindHandshakeStall) {
		// The backend kthread loses the announcement (a missed watch
		// event): nothing is scheduled, and the device sits in
		// Initialising until the toolstack's watch timeout re-attaches.
		b.StallsInjected++
		return
	}
	dir := path[:len(path)-6]
	// The backend kthread picks the request up a little later; this
	// async hop is what lets backend transactions overlap toolstack
	// ones under load.
	b.Clock.After(costs.BackendDeviceInit, func() { b.setup(dir) })
}

// setup performs steps 2 of Fig. 7a: allocate the event channel and
// grant, write them back, run hotplug, and move to InitWait.
func (b *Backend) setup(dir string) {
	feDomStr, err := b.Store.Read(dir + "/frontend-id")
	if err != nil {
		return // device vanished before we got to it
	}
	feDom, err := strconv.Atoi(feDomStr)
	if err != nil {
		return
	}
	port, err := b.HV.AllocUnboundPort(0, hv.DomID(feDom))
	if err != nil {
		return
	}
	// Control page shared with the frontend (device details that the
	// XenStore no longer needs to carry once connected).
	ref, err := b.HV.GrantAccess(0, hv.DomID(feDom), uint64(0xc0de0000+port), false)
	if err != nil {
		return
	}
	err = b.Store.Txn(8, func(tx *xenstore.Tx) error {
		if _, err := tx.Read(dir + "/state"); err != nil {
			return err
		}
		tx.Write(dir+"/event-channel", strconv.Itoa(int(port)))
		tx.Write(dir+"/grant-ref", strconv.Itoa(int(ref)))
		tx.Write(dir+"/state", strconv.Itoa(StateInitWait))
		return nil
	})
	if err != nil {
		return
	}
	if b.Kind == hv.DevVif && b.Hotplug != nil {
		_ = b.Hotplug.Setup(vifName(feDom, 0))
	}
	b.DevicesSetUp++
}

// Teardown closes down the backend half of a device (used on destroy
// and migration).
func (b *Backend) Teardown(dom hv.DomID, idx int) {
	dir := BackendPath(dom, b.Kind, idx)
	if portStr, err := b.Store.Read(dir + "/event-channel"); err == nil {
		if p, err := strconv.Atoi(portStr); err == nil {
			_ = b.HV.ClosePort(hv.Port(p))
		}
	}
	if b.Kind == hv.DevVif && b.Hotplug != nil {
		_ = b.Hotplug.Teardown(vifName(int(dom), idx))
	}
	_ = b.Store.Rm(dir)
}

// WriteDeviceEntries performs the toolstack's half of step 1 of
// Fig. 7a inside the caller's transaction: ~15 entries across the
// frontend and backend directories ("the VM creation process alone can
// require interaction with over 30 XenStore entries").
func WriteDeviceEntries(tx *xenstore.Tx, req DeviceReq) {
	fe := FrontendPath(req.Dom, req.Kind, req.Idx)
	be := BackendPath(req.Dom, req.Kind, req.Idx)
	tx.Write(fe+"/backend", be)
	tx.Write(fe+"/backend-id", "0")
	tx.Write(fe+"/handle", strconv.Itoa(req.Idx))
	if req.Kind == hv.DevVif {
		tx.Write(fe+"/mac", req.MAC)
		tx.Write(be+"/mac", req.MAC)
		tx.Write(be+"/bridge", "xenbr0")
	}
	tx.Write(fe+"/state", strconv.Itoa(StateInitialising))
	tx.Write(be+"/frontend", fe)
	tx.Write(be+"/frontend-id", strconv.Itoa(int(req.Dom)))
	tx.Write(be+"/handle", strconv.Itoa(req.Idx))
	tx.Write(be+"/online", "1")
	tx.Write(be+"/state", strconv.Itoa(StateInitialising))
}

// handshakeAttempts bounds how many times the toolstack re-announces a
// device whose backend never answered before giving up with
// ErrDeviceTimeout.
const handshakeAttempts = 3

// WaitBackendReady polls the backend state until it reaches at least
// InitWait, sleeping between polls (this is where xl blocks while
// hotplug scripts run). If the backend stays silent for a full
// costs.DeviceHandshakeTimeout window — a lost watch event — the
// toolstack re-attaches: it rewrites the state node to Initialising,
// which re-fires the backend's watch and restarts setup. After
// handshakeAttempts silent windows it degrades to ErrDeviceTimeout.
func WaitBackendReady(s *xenstore.Store, clock *sim.Clock, dom hv.DomID, kind hv.DevKind, idx int) error {
	path := BackendPath(dom, kind, idx) + "/state"
	for attempt := 0; attempt < handshakeAttempts; attempt++ {
		deadline := clock.Now().Add(costs.DeviceHandshakeTimeout)
		for {
			v, err := s.Read(path)
			if err == nil {
				if st, err := strconv.Atoi(v); err == nil && st >= StateInitWait {
					return nil
				}
			}
			if clock.Now() >= deadline {
				break
			}
			clock.Sleep(200 * time.Microsecond) // poll interval
		}
		if attempt < handshakeAttempts-1 {
			clock.Sleep(costs.DeviceReattach)
			s.Write(path, strconv.Itoa(StateInitialising))
		}
	}
	return fmt.Errorf("%w: backend %s/%d for domain %d silent across %d attempts",
		ErrDeviceTimeout, kindName(kind), idx, dom, handshakeAttempts)
}

// ConnectFrontend is the guest half (steps 3–4 of Fig. 7a), run when
// the guest boots: read the backend's event channel and grant, bind
// and map them, and flip both states to Connected.
func ConnectFrontend(s *xenstore.Store, h *hv.Hypervisor, dom hv.DomID, kind hv.DevKind, idx int) error {
	fe := FrontendPath(dom, kind, idx)
	be := BackendPath(dom, kind, idx)
	portStr, err := s.Read(be + "/event-channel")
	if err != nil {
		return fmt.Errorf("%w: frontend %s/%d dom %d: %v", ErrBackendGone, kindName(kind), idx, dom, err)
	}
	refStr, err := s.Read(be + "/grant-ref")
	if err != nil {
		return fmt.Errorf("%w: frontend %s/%d dom %d: %v", ErrBackendGone, kindName(kind), idx, dom, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("%w: bad event-channel %q: %v", ErrBadEntry, portStr, err)
	}
	ref, err := strconv.Atoi(refStr)
	if err != nil {
		return fmt.Errorf("%w: bad grant-ref %q: %v", ErrBadEntry, refStr, err)
	}
	if err := h.BindPort(hv.Port(port), dom, func() {}); err != nil {
		return err
	}
	if _, err := h.MapGrant(hv.GrantRef(ref), dom); err != nil {
		return err
	}
	h.Clock.Sleep(costs.FrontendDeviceInit)
	s.Write(fe+"/state", strconv.Itoa(StateConnected))
	s.Write(be+"/state", strconv.Itoa(StateConnected))
	// A running frontend keeps a watch on its backend directory — one
	// of the per-guest costs that accumulate against the store.
	s.Watch(be, FrontendWatchToken(dom, kind, idx), func(string, string) {})
	return nil
}

// RemoveDeviceEntries deletes a device's store state (toolstack side
// of destroy), including the running frontend's watch — without this
// the store's watch list (and with it every write's matching cost)
// would grow forever under churn.
func RemoveDeviceEntries(s *xenstore.Store, dom hv.DomID, kind hv.DevKind, idx int) {
	_ = s.Rm(FrontendPath(dom, kind, idx))
	_ = s.Rm(BackendPath(dom, kind, idx))
	s.UnwatchByToken(FrontendWatchToken(dom, kind, idx))
}
