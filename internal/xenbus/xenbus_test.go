package xenbus

import (
	"errors"
	"strconv"
	"testing"
	"time"

	"lightvm/internal/devd"
	"lightvm/internal/hv"
	"lightvm/internal/sim"
	"lightvm/internal/xenstore"
)

const mib = 1024 * 1024

type fixture struct {
	clock *sim.Clock
	h     *hv.Hypervisor
	s     *xenstore.Store
	be    *Backend
	hp    *devd.Xendevd
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	clock := sim.NewClock()
	h := hv.New(clock, 8*1024*mib)
	s := xenstore.New(clock)
	hp := &devd.Xendevd{Clock: clock, Bridge: &devd.NullBridge{}}
	be := NewBackend(hv.DevVif, h, s, hp)
	return &fixture{clock: clock, h: h, s: s, be: be, hp: hp}
}

func (f *fixture) newDomain(t *testing.T) *hv.Domain {
	t.Helper()
	d, err := f.h.CreateDomain(hv.Config{MaxMem: 8 * mib})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// createDevice performs the toolstack's side: write entries in a txn.
func (f *fixture) createDevice(t *testing.T, dom hv.DomID) {
	t.Helper()
	err := f.s.Txn(8, func(tx *xenstore.Tx) error {
		WriteDeviceEntries(tx, DeviceReq{Kind: hv.DevVif, Dom: dom, Idx: 0, MAC: "00:16:3e:00:00:01"})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFullHandshake(t *testing.T) {
	f := newFixture(t)
	d := f.newDomain(t)
	f.createDevice(t, d.ID)

	// Backend work is asynchronous; waiting advances the clock and
	// lets it run.
	if err := WaitBackendReady(f.s, f.clock, d.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	if f.be.DevicesSetUp != 1 {
		t.Fatalf("backend set up %d devices", f.be.DevicesSetUp)
	}
	be := BackendPath(d.ID, hv.DevVif, 0)
	st, _ := f.s.Read(be + "/state")
	if st != strconv.Itoa(StateInitWait) {
		t.Fatalf("backend state %q, want InitWait", st)
	}
	if _, err := f.s.Read(be + "/event-channel"); err != nil {
		t.Fatal("backend did not publish event channel")
	}

	// Guest boots: frontend connects.
	if err := ConnectFrontend(f.s, f.h, d.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	fest, _ := f.s.Read(FrontendPath(d.ID, hv.DevVif, 0) + "/state")
	best, _ := f.s.Read(be + "/state")
	if fest != strconv.Itoa(StateConnected) || best != strconv.Itoa(StateConnected) {
		t.Fatalf("states fe=%q be=%q, want Connected", fest, best)
	}
	if f.h.NumPorts() != 1 {
		t.Fatalf("event channels = %d, want 1", f.h.NumPorts())
	}
	if f.hp.Events != 1 {
		t.Fatalf("hotplug events = %d, want 1", f.hp.Events)
	}
}

func TestHandshakeLeavesFrontendWatch(t *testing.T) {
	f := newFixture(t)
	d := f.newDomain(t)
	before := f.s.NumWatches()
	f.createDevice(t, d.ID)
	if err := WaitBackendReady(f.s, f.clock, d.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	if err := ConnectFrontend(f.s, f.h, d.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	if f.s.NumWatches() != before+1 {
		t.Fatalf("watches %d → %d, want +1 (running frontend keeps one)", before, f.s.NumWatches())
	}
}

func TestConnectBeforeBackendReadyFails(t *testing.T) {
	f := newFixture(t)
	d := f.newDomain(t)
	f.createDevice(t, d.ID)
	// No wait: backend hasn't run, no event-channel node yet.
	if err := ConnectFrontend(f.s, f.h, d.ID, hv.DevVif, 0); err == nil {
		t.Fatal("frontend connected before backend published details")
	}
}

func TestWaitBackendTimesOutWithoutBackend(t *testing.T) {
	clock := sim.NewClock()
	h := hv.New(clock, mib*1024)
	s := xenstore.New(clock)
	d, _ := h.CreateDomain(hv.Config{MaxMem: mib})
	// No backend registered at all.
	s.Write(BackendPath(d.ID, hv.DevVif, 0)+"/state", strconv.Itoa(StateInitialising))
	if err := WaitBackendReady(s, clock, d.ID, hv.DevVif, 0); err == nil {
		t.Fatal("wait succeeded with no backend running")
	}
}

func TestTeardown(t *testing.T) {
	f := newFixture(t)
	d := f.newDomain(t)
	f.createDevice(t, d.ID)
	if err := WaitBackendReady(f.s, f.clock, d.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	if err := ConnectFrontend(f.s, f.h, d.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	f.be.Teardown(d.ID, 0)
	RemoveDeviceEntries(f.s, d.ID, hv.DevVif, 0)
	if f.s.Exists(BackendPath(d.ID, hv.DevVif, 0)) {
		t.Fatal("backend dir survived teardown")
	}
	if f.s.Exists(FrontendPath(d.ID, hv.DevVif, 0)) {
		t.Fatal("frontend dir survived teardown")
	}
	if f.h.NumPorts() != 0 {
		t.Fatalf("event channel leaked: %d", f.h.NumPorts())
	}
}

func TestBackendIgnoresForeignWrites(t *testing.T) {
	f := newFixture(t)
	// Unrelated writes under the backend root must not trigger setup.
	f.s.Write("/local/domain/0/backend/vif/junk", "x")
	f.clock.Sleep(50 * 1e6) // 50ms
	if f.be.DevicesSetUp != 0 {
		t.Fatal("backend reacted to non-state write")
	}
}

func TestMultipleDevicesSequential(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 5; i++ {
		d := f.newDomain(t)
		f.createDevice(t, d.ID)
		if err := WaitBackendReady(f.s, f.clock, d.ID, hv.DevVif, 0); err != nil {
			t.Fatal(err)
		}
		if err := ConnectFrontend(f.s, f.h, d.ID, hv.DevVif, 0); err != nil {
			t.Fatal(err)
		}
	}
	if f.be.DevicesSetUp != 5 {
		t.Fatalf("DevicesSetUp = %d", f.be.DevicesSetUp)
	}
	if f.h.NumPorts() != 5 {
		t.Fatalf("ports = %d", f.h.NumPorts())
	}
}

func TestPathHelpers(t *testing.T) {
	if FrontendPath(3, hv.DevVif, 0) != "/local/domain/3/device/vif/0" {
		t.Fatal(FrontendPath(3, hv.DevVif, 0))
	}
	if BackendPath(3, hv.DevVbd, 1) != "/local/domain/0/backend/vbd/3/1" {
		t.Fatal(BackendPath(3, hv.DevVbd, 1))
	}
}

func TestHotplugAblation(t *testing.T) {
	// The same handshake through bash hotplug must be slower than
	// through xendevd — the §5.3 ablation.
	elapsed := func(hp devd.Hotplug) sim.Duration {
		clock := sim.NewClock()
		h := hv.New(clock, 8*1024*mib)
		s := xenstore.New(clock)
		var be *Backend
		switch v := hp.(type) {
		case *devd.BashScripts:
			v.Clock = clock
			be = NewBackend(hv.DevVif, h, s, v)
		case *devd.Xendevd:
			v.Clock = clock
			be = NewBackend(hv.DevVif, h, s, v)
		}
		_ = be
		d, _ := h.CreateDomain(hv.Config{MaxMem: 8 * mib})
		start := clock.Now()
		err := s.Txn(8, func(tx *xenstore.Tx) error {
			WriteDeviceEntries(tx, DeviceReq{Kind: hv.DevVif, Dom: d.ID, Idx: 0, MAC: "00:16:3e:00:00:02"})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := WaitBackendReady(s, clock, d.ID, hv.DevVif, 0); err != nil {
			t.Fatal(err)
		}
		return clock.Now().Sub(start)
	}
	bash := elapsed(&devd.BashScripts{Bridge: &devd.NullBridge{}})
	xd := elapsed(&devd.Xendevd{Bridge: &devd.NullBridge{}})
	if bash <= xd {
		t.Fatalf("bash hotplug (%v) not slower than xendevd (%v)", bash, xd)
	}
	if bash-xd < 20*1e6 { // ≥20ms difference expected
		t.Fatalf("hotplug ablation too small: bash=%v xendevd=%v", bash, xd)
	}
}

func TestOverlappingCreationsConflictAndRecover(t *testing.T) {
	// The §4.2 mechanism: backend transactions from one creation land
	// while the next creation's transaction is open on the same
	// backend tree, forcing a conflict+retry — which the Txn helper
	// absorbs. We drive it explicitly: open a toolstack transaction
	// that reads the shared backend directory, let the async backend
	// work for a previous device commit underneath it, and watch the
	// commit fail with ErrAgain.
	f := newFixture(t)
	d1 := f.newDomain(t)
	d2 := f.newDomain(t)

	// Creation 1: entries written; backend work now pending on the
	// clock.
	f.createDevice(t, d1.ID)

	// Creation 2 opens its transaction and reads the previous device's
	// backend state (as a toolstack enumerating in-flight devices
	// does) before that backend has run.
	tx := f.s.TxnStart()
	if _, err := tx.Read(BackendPath(d1.ID, hv.DevVif, 0) + "/state"); err != nil {
		t.Fatal(err)
	}
	WriteDeviceEntries(tx, DeviceReq{Kind: hv.DevVif, Dom: d2.ID, Idx: 0, MAC: "00:16:3e:00:00:09"})

	// Backend 1 completes while transaction 2 is open (advancing the
	// clock runs its scheduled work, which writes under the observed
	// directory).
	f.clock.Sleep(5 * time.Millisecond)
	if f.be.DevicesSetUp != 1 {
		t.Fatalf("backend did not run: %d", f.be.DevicesSetUp)
	}

	if err := tx.Commit(); !errors.Is(err, xenstore.ErrAgain) {
		t.Fatalf("overlapped commit: %v", err)
	}
	if f.s.Count.TxnConflicts == 0 {
		t.Fatal("no conflict recorded")
	}

	// The retry loop recovers: a fresh transaction goes through and
	// the device completes its handshake.
	f.createDevice(t, d2.ID)
	if err := WaitBackendReady(f.s, f.clock, d2.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	if err := ConnectFrontend(f.s, f.h, d2.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
}
