package xenbus

import (
	"errors"
	"testing"

	"lightvm/internal/costs"
	"lightvm/internal/faults"
	"lightvm/internal/hv"
)

func TestHandshakeStallRecoversViaReattach(t *testing.T) {
	f := newFixture(t)
	d := f.newDomain(t)
	// Drop only the first announcement: the window closes long before
	// the toolstack's re-attach rewrites the state node, so the second
	// announcement reaches the backend.
	f.s.Faults = faults.New(f.clock, 7, faults.Plan{
		Rate:   1,
		Kinds:  []faults.Kind{faults.KindHandshakeStall},
		Window: faults.Window{To: f.clock.Now().Add(costs.DeviceHandshakeTimeout / 2)},
	})
	start := f.clock.Now()
	f.createDevice(t, d.ID)
	if err := WaitBackendReady(f.s, f.clock, d.ID, hv.DevVif, 0); err != nil {
		t.Fatalf("handshake did not recover via re-attach: %v", err)
	}
	if f.be.StallsInjected != 1 {
		t.Fatalf("got %d injected stalls, want 1", f.be.StallsInjected)
	}
	if f.be.DevicesSetUp != 1 {
		t.Fatalf("backend set up %d devices, want 1", f.be.DevicesSetUp)
	}
	// The recovery must have paid at least one full watch-timeout
	// window before re-attaching.
	if elapsed := f.clock.Now().Sub(start); elapsed < costs.DeviceHandshakeTimeout {
		t.Fatalf("recovered in %v, faster than the %v watch timeout", elapsed, costs.DeviceHandshakeTimeout)
	}
	// And the device must be fully usable afterwards.
	if err := ConnectFrontend(f.s, f.h, d.ID, hv.DevVif, 0); err != nil {
		t.Fatalf("frontend connect after recovery: %v", err)
	}
}

func TestHandshakeStallExhaustsToDeviceTimeout(t *testing.T) {
	f := newFixture(t)
	d := f.newDomain(t)
	// Every announcement is dropped: all re-attach attempts fail and
	// the wait degrades to the typed timeout.
	f.s.Faults = faults.New(f.clock, 11, faults.Plan{
		Rate:  1,
		Kinds: []faults.Kind{faults.KindHandshakeStall},
	})
	f.createDevice(t, d.ID)
	err := WaitBackendReady(f.s, f.clock, d.ID, hv.DevVif, 0)
	if err == nil {
		t.Fatal("wait succeeded with every announcement dropped")
	}
	if !errors.Is(err, ErrDeviceTimeout) {
		t.Fatalf("error %v is not ErrDeviceTimeout", err)
	}
	if f.be.StallsInjected != handshakeAttempts {
		t.Fatalf("got %d injected stalls, want one per attempt (%d)", f.be.StallsInjected, handshakeAttempts)
	}
	if f.be.DevicesSetUp != 0 {
		t.Fatal("backend completed setup despite dropped announcements")
	}
}

func TestConnectFrontendBadEntryIsTyped(t *testing.T) {
	f := newFixture(t)
	d := f.newDomain(t)
	f.createDevice(t, d.ID)
	if err := WaitBackendReady(f.s, f.clock, d.ID, hv.DevVif, 0); err != nil {
		t.Fatal(err)
	}
	be := BackendPath(d.ID, hv.DevVif, 0)
	f.s.Write(be+"/event-channel", "not-a-number")
	err := ConnectFrontend(f.s, f.h, d.ID, hv.DevVif, 0)
	if !errors.Is(err, ErrBadEntry) {
		t.Fatalf("error %v is not ErrBadEntry", err)
	}
}

func TestConnectFrontendBackendGoneIsTyped(t *testing.T) {
	f := newFixture(t)
	d := f.newDomain(t)
	f.createDevice(t, d.ID)
	// No WaitBackendReady and no backend nodes: connect must fail with
	// the typed sentinel.
	_ = f.s.Rm(BackendPath(d.ID, hv.DevVif, 0))
	err := ConnectFrontend(f.s, f.h, d.ID, hv.DevVif, 0)
	if !errors.Is(err, ErrBackendGone) {
		t.Fatalf("error %v is not ErrBackendGone", err)
	}
}
