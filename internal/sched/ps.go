package sched

import (
	"math"
	"sort"
	"time"

	"lightvm/internal/sim"
)

// PS is an event-driven processor-sharing queue over a set of cores:
// the k jobs on one core each progress at rate 1/k. The §7 use cases
// run their VM workloads through it (compute-service jobs in Fig. 17,
// firewall packet work in Fig. 16a), so completion times under
// overload emerge from sharing rather than from a formula.
type PS struct {
	clock  *sim.Clock
	cores  map[int]*psCore
	nextID int
}

type psCore struct {
	jobs       map[int]*psJob
	lastUpdate sim.Time
	timerSeq   int // invalidates stale completion timers
}

type psJob struct {
	id        int
	remaining time.Duration
	done      func(finished sim.Time)
}

// NewPS creates a processor-sharing queue on clock.
func NewPS(clock *sim.Clock) *PS {
	return &PS{clock: clock, cores: make(map[int]*psCore)}
}

// Submit queues work on core; done (optional) runs at completion with
// the completion time. Job ids are per-queue, not global: hosts on
// different shards submit concurrently, and a shared counter would be
// both a data race and a cross-run nondeterminism.
func (ps *PS) Submit(core int, work time.Duration, done func(sim.Time)) {
	c := ps.core(core)
	ps.catchUp(c)
	ps.nextID++
	c.jobs[ps.nextID] = &psJob{id: ps.nextID, remaining: work, done: done}
	ps.rearm(core, c)
}

// Active reports the number of unfinished jobs on core.
func (ps *PS) Active(core int) int {
	c := ps.core(core)
	ps.catchUp(c)
	return len(c.jobs)
}

// TotalActive reports unfinished jobs across all cores.
func (ps *PS) TotalActive() int {
	n := 0
	for core, c := range ps.cores {
		_ = core
		ps.catchUp(c)
		n += len(c.jobs)
	}
	return n
}

func (ps *PS) core(core int) *psCore {
	c, ok := ps.cores[core]
	if !ok {
		c = &psCore{jobs: make(map[int]*psJob), lastUpdate: ps.clock.Now()}
		ps.cores[core] = c
	}
	return c
}

// catchUp applies elapsed progress to every job on the core and fires
// completions that are already due.
func (ps *PS) catchUp(c *psCore) {
	now := ps.clock.Now()
	elapsed := now.Sub(c.lastUpdate)
	c.lastUpdate = now
	for elapsed > 0 && len(c.jobs) > 0 {
		k := time.Duration(len(c.jobs))
		// Earliest finisher bounds how long the current sharing level
		// persists.
		min := time.Duration(math.MaxInt64)
		for _, j := range c.jobs {
			if j.remaining < min {
				min = j.remaining
			}
		}
		span := min * k // wall time until the earliest job finishes
		if span > elapsed {
			// No completion within the window: everyone progresses.
			progress := elapsed / k
			for _, j := range c.jobs {
				j.remaining -= progress
			}
			return
		}
		// Advance to the completion point and retire finished jobs.
		// Simultaneous finishers complete in submission (id) order, not
		// map order — callbacks must fire identically on every run.
		for _, j := range c.jobs {
			j.remaining -= min
		}
		elapsed -= span
		finishAt := now.Add(-sim.Duration(elapsed))
		var finished []*psJob
		for id, j := range c.jobs {
			if j.remaining <= 0 {
				delete(c.jobs, id)
				finished = append(finished, j)
			}
		}
		sort.Slice(finished, func(i, k int) bool { return finished[i].id < finished[k].id })
		for _, j := range finished {
			if j.done != nil {
				j.done(finishAt)
			}
		}
	}
}

// rearm schedules a wake-up at the core's next completion so that
// completions fire even if nobody polls.
func (ps *PS) rearm(core int, c *psCore) {
	c.timerSeq++
	seq := c.timerSeq
	if len(c.jobs) == 0 {
		return
	}
	min := time.Duration(math.MaxInt64)
	for _, j := range c.jobs {
		if j.remaining < min {
			min = j.remaining
		}
	}
	wake := min * time.Duration(len(c.jobs))
	ps.clock.After(wake, func() {
		if c.timerSeq != seq {
			return // superseded by a later Submit
		}
		ps.catchUp(c)
		ps.rearm(core, c)
	})
}

// Drain runs the clock forward until every job on every core has
// completed, returning the finish time.
func (ps *PS) Drain() sim.Time {
	for {
		busy := false
		for _, c := range ps.cores {
			ps.catchUp(c)
			if len(c.jobs) > 0 {
				busy = true
			}
		}
		if !busy {
			return ps.clock.Now()
		}
		if dl, ok := ps.clock.NextDeadline(); ok {
			ps.clock.AdvanceTo(dl)
		} else {
			// No timer armed (all stale): re-arm every busy core.
			for core, c := range ps.cores {
				if len(c.jobs) > 0 {
					ps.rearm(core, c)
				}
			}
		}
	}
}
