package sched

import (
	"math"
	"testing"
	"time"

	"lightvm/internal/sim"
)

func TestGuestCores(t *testing.T) {
	got := Xeon4.GuestCores()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Xeon4 guest cores = %v", got)
	}
	if n := len(Amd64.GuestCores()); n != 60 {
		t.Fatalf("Amd64 guest cores = %d, want 60", n)
	}
}

func TestPlaceRoundRobin(t *testing.T) {
	s := New(Xeon4)
	want := []int{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if c := s.Place(); c != w {
			t.Fatalf("Place #%d = %d, want %d", i, c, w)
		}
	}
}

func TestDilationGrowsWithIdleGuests(t *testing.T) {
	s := New(Xeon4)
	if d := s.Dilation(1); d != 1 {
		t.Fatalf("empty core dilation = %v", d)
	}
	for i := 0; i < 300; i++ {
		s.AddGuest(1, 50, 55*time.Microsecond, 0)
	}
	d := s.Dilation(1)
	if d <= 1.5 {
		t.Fatalf("300 idle Tinyx-like guests dilate only %.2f×", d)
	}
	// Unikernel-like guests (no wakeups) add nothing.
	for i := 0; i < 300; i++ {
		s.AddGuest(2, 0, 0, 0)
	}
	if s.Dilation(2) != 1 {
		t.Fatalf("idle unikernels dilated core: %v", s.Dilation(2))
	}
}

func TestRemoveGuestRestoresDilation(t *testing.T) {
	s := New(Xeon4)
	s.AddGuest(1, 100, time.Millisecond, 0.01)
	s.RemoveGuest(1, 100, time.Millisecond, 0.01)
	if d := s.Dilation(1); math.Abs(d-1) > 1e-9 {
		t.Fatalf("dilation after remove = %v", d)
	}
	if s.Guests(1) != 0 {
		t.Fatalf("guest count = %d", s.Guests(1))
	}
}

func TestRunWorkDilated(t *testing.T) {
	s := New(Xeon4)
	clock := sim.NewClock()
	base := s.RunWork(clock, 1, 100*time.Millisecond)
	if base != 100*time.Millisecond {
		t.Fatalf("undilated work took %v", base)
	}
	for i := 0; i < 500; i++ {
		s.AddGuest(1, 50, 55*time.Microsecond, 0)
	}
	dilated := s.RunWork(clock, 1, 100*time.Millisecond)
	if dilated <= base {
		t.Fatalf("dilated run (%v) not slower than base (%v)", dilated, base)
	}
}

func TestUtilizationScalesAndCaps(t *testing.T) {
	s := New(Xeon4)
	u0 := s.Utilization()
	for i := 0; i < 1000; i++ {
		s.AddGuest(s.Place(), 0, 0, 0.001) // Debian-like duty
	}
	u1 := s.Utilization()
	if u1 <= u0 {
		t.Fatal("utilization did not grow with guests")
	}
	// 1000 × 0.1% of a core on a 4-core box ≈ 25%.
	if u1 < 0.20 || u1 > 0.35 {
		t.Fatalf("1000 Debian-like guests: utilization = %.3f, want ≈0.25", u1)
	}
	for i := 0; i < 100000; i++ {
		s.AddGuest(1, 0, 0, 0.01)
	}
	if s.Utilization() > 1 {
		t.Fatal("utilization exceeded 100%")
	}
}

func TestPSSingleJob(t *testing.T) {
	clock := sim.NewClock()
	ps := NewPS(clock)
	var finished sim.Time
	ps.Submit(0, 800*time.Millisecond, func(at sim.Time) { finished = at })
	end := ps.Drain()
	if want := sim.Time(800 * time.Millisecond); finished != want || end != want {
		t.Fatalf("single job finished at %v (drain %v), want %v", finished, end, want)
	}
}

func TestPSTwoJobsShareCore(t *testing.T) {
	clock := sim.NewClock()
	ps := NewPS(clock)
	var f1, f2 sim.Time
	ps.Submit(0, 100*time.Millisecond, func(at sim.Time) { f1 = at })
	ps.Submit(0, 100*time.Millisecond, func(at sim.Time) { f2 = at })
	ps.Drain()
	// Two equal jobs sharing one core both finish at 200ms.
	if f1 != sim.Time(200*time.Millisecond) || f2 != f1 {
		t.Fatalf("shared jobs finished at %v, %v; want both 200ms", f1, f2)
	}
}

func TestPSUnequalJobs(t *testing.T) {
	clock := sim.NewClock()
	ps := NewPS(clock)
	var fShort, fLong sim.Time
	ps.Submit(0, 50*time.Millisecond, func(at sim.Time) { fShort = at })
	ps.Submit(0, 150*time.Millisecond, func(at sim.Time) { fLong = at })
	ps.Drain()
	// Short job: shares until 100ms (50ms each done), finishes at 100ms.
	// Long job: 100ms remaining at that point, alone → finishes at 200ms.
	if fShort != sim.Time(100*time.Millisecond) {
		t.Fatalf("short job at %v, want 100ms", fShort)
	}
	if fLong != sim.Time(200*time.Millisecond) {
		t.Fatalf("long job at %v, want 200ms", fLong)
	}
}

func TestPSSeparateCoresIndependent(t *testing.T) {
	clock := sim.NewClock()
	ps := NewPS(clock)
	var f1, f2 sim.Time
	ps.Submit(0, 100*time.Millisecond, func(at sim.Time) { f1 = at })
	ps.Submit(1, 100*time.Millisecond, func(at sim.Time) { f2 = at })
	ps.Drain()
	if f1 != sim.Time(100*time.Millisecond) || f2 != f1 {
		t.Fatalf("independent cores interfered: %v, %v", f1, f2)
	}
}

func TestPSLateArrival(t *testing.T) {
	clock := sim.NewClock()
	ps := NewPS(clock)
	var f1, f2 sim.Time
	ps.Submit(0, 100*time.Millisecond, func(at sim.Time) { f1 = at })
	clock.Sleep(50 * time.Millisecond) // job1 has 50ms left
	ps.Submit(0, 100*time.Millisecond, func(at sim.Time) { f2 = at })
	ps.Drain()
	// From t=50: both share. Job1 needs 50 more → finishes at 150.
	// Job2 then has 50 left, alone → finishes at 200.
	if f1 != sim.Time(150*time.Millisecond) {
		t.Fatalf("job1 at %v, want 150ms", f1)
	}
	if f2 != sim.Time(200*time.Millisecond) {
		t.Fatalf("job2 at %v, want 200ms", f2)
	}
}

func TestPSActiveCounts(t *testing.T) {
	clock := sim.NewClock()
	ps := NewPS(clock)
	for i := 0; i < 5; i++ {
		ps.Submit(i%2, time.Second, nil)
	}
	if ps.TotalActive() != 5 {
		t.Fatalf("TotalActive = %d", ps.TotalActive())
	}
	if ps.Active(0) != 3 || ps.Active(1) != 2 {
		t.Fatalf("Active = %d,%d", ps.Active(0), ps.Active(1))
	}
	ps.Drain()
	if ps.TotalActive() != 0 {
		t.Fatalf("jobs survived drain: %d", ps.TotalActive())
	}
}

func TestPSCompletionsFireViaTimers(t *testing.T) {
	// Completions must fire from clock advancement alone (no polling):
	// this is what lets open-loop experiments observe job completions.
	clock := sim.NewClock()
	ps := NewPS(clock)
	done := false
	ps.Submit(0, 10*time.Millisecond, func(sim.Time) { done = true })
	clock.Sleep(9 * time.Millisecond)
	if done {
		t.Fatal("completion fired early")
	}
	clock.Sleep(2 * time.Millisecond)
	if !done {
		t.Fatal("completion did not fire from timer")
	}
}

func TestPSConservation(t *testing.T) {
	// Work conservation: total completion time of n equal jobs on one
	// core equals n × work regardless of arrival pattern.
	clock := sim.NewClock()
	ps := NewPS(clock)
	const n = 10
	work := 20 * time.Millisecond
	var last sim.Time
	for i := 0; i < n; i++ {
		ps.Submit(0, work, func(at sim.Time) {
			if at > last {
				last = at
			}
		})
		clock.Sleep(time.Millisecond)
	}
	ps.Drain()
	want := sim.Time(n * work)
	diff := last - want
	if diff < 0 {
		diff = -diff
	}
	// Integer nanosecond arithmetic loses <1µs over a run like this.
	if diff > sim.Time(time.Microsecond) {
		t.Fatalf("makespan %v, want %v (±1µs)", last, want)
	}
}
