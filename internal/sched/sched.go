// Package sched models the host's CPU scheduling as it affects the
// paper's measurements: round-robin placement of guests onto cores,
// boot-time dilation from idle guests' background wakeups (Fig. 11),
// reported CPU utilization (Fig. 15), and a processor-sharing queue
// used by the use-case experiments (§7) for jobs that share cores.
package sched

import (
	"fmt"
	"time"

	"lightvm/internal/costs"
	"lightvm/internal/sim"
)

// Machine describes a testbed host (the paper uses three).
type Machine struct {
	Name      string
	Cores     int
	Dom0Cores int
	MemoryGB  int
}

// GuestCores returns the core IDs available to guests (Dom0 gets the
// first Dom0Cores).
func (m Machine) GuestCores() []int {
	out := make([]int, 0, m.Cores-m.Dom0Cores)
	for c := m.Dom0Cores; c < m.Cores; c++ {
		out = append(out, c)
	}
	return out
}

// Testbeds from the evaluation.
var (
	// Xeon4 is the Intel Xeon E5-1630 v3 (4 cores, 128 GB) used for
	// Figs. 4, 5, 9, 12, 13, 14, 15.
	Xeon4 = Machine{Name: "xeon-e5-1630v3", Cores: 4, Dom0Cores: 1, MemoryGB: 128}
	// Amd64 is the 4×AMD Opteron 6376 (64 cores, 128 GB) used for
	// Fig. 10 and the 8000-guest density test (4 cores to Dom0).
	Amd64 = Machine{Name: "amd-opteron-6376", Cores: 64, Dom0Cores: 4, MemoryGB: 128}
	// Xeon14 is the Intel Xeon E5-2690 v4 (14 cores, 64 GB) used for
	// the §7 use cases.
	Xeon14 = Machine{Name: "xeon-e5-2690v4", Cores: 14, Dom0Cores: 1, MemoryGB: 64}
	// Xeon4Ckpt is the checkpoint/migration split: 2 cores to Dom0.
	Xeon4Ckpt = Machine{Name: "xeon-e5-1630v3-ckpt", Cores: 4, Dom0Cores: 2, MemoryGB: 128}
)

// coreLoad aggregates idle-guest interference on one core.
type coreLoad struct {
	guests       int
	wakeRate     float64       // wakeups/s from all idle guests
	wakeWorkRate time.Duration // guest work per second of wall time
}

// Sched tracks guest placement and idle load per core.
type Sched struct {
	machine Machine
	cores   map[int]*coreLoad
	rrNext  int
	// utilDuty accumulates reported idle duty (fraction of one core)
	// across all guests; see Utilization.
	utilDuty float64
}

// New creates a scheduler for machine.
func New(machine Machine) *Sched {
	s := &Sched{machine: machine, cores: make(map[int]*coreLoad)}
	for _, c := range machine.GuestCores() {
		s.cores[c] = &coreLoad{}
	}
	return s
}

// Machine returns the underlying testbed description.
func (s *Sched) Machine() Machine { return s.machine }

// Place assigns the next guest to a core round-robin (the paper pins
// VMs "to the VMs in a round-robin fashion").
func (s *Sched) Place() int {
	cores := s.machine.GuestCores()
	c := cores[s.rrNext%len(cores)]
	s.rrNext++
	return c
}

// AddGuest registers an idle guest's background load on core.
func (s *Sched) AddGuest(core int, wakeRatePerSec float64, wakeWork time.Duration, utilDuty float64) {
	cl, ok := s.cores[core]
	if !ok {
		cl = &coreLoad{}
		s.cores[core] = cl
	}
	cl.guests++
	cl.wakeRate += wakeRatePerSec
	cl.wakeWorkRate += time.Duration(wakeRatePerSec * float64(wakeWork))
	s.utilDuty += utilDuty
}

// RemoveGuest unregisters a guest's load.
func (s *Sched) RemoveGuest(core int, wakeRatePerSec float64, wakeWork time.Duration, utilDuty float64) {
	cl, ok := s.cores[core]
	if !ok {
		return
	}
	cl.guests--
	cl.wakeRate -= wakeRatePerSec
	cl.wakeWorkRate -= time.Duration(wakeRatePerSec * float64(wakeWork))
	s.utilDuty -= utilDuty
	if cl.guests < 0 {
		panic(fmt.Sprintf("sched: negative guest count on core %d", core))
	}
}

// Guests returns the number of guests placed on core.
func (s *Sched) Guests(core int) int {
	if cl, ok := s.cores[core]; ok {
		return cl.guests
	}
	return 0
}

// Dilation is the slowdown factor a busy task on core experiences
// from idle guests' wakeups: every wakeup steals its work plus two
// hypervisor context switches. Unikernels and containers don't wake
// when idle, so their cores stay at 1.0 — this is why Fig. 11's
// unikernel curve is flat while Tinyx's climbs.
func (s *Sched) Dilation(core int) float64 {
	cl, ok := s.cores[core]
	if !ok {
		return 1
	}
	stolenPerSec := float64(cl.wakeWorkRate) + cl.wakeRate*float64(2*costs.CtxSwitch)
	return 1 + stolenPerSec/float64(time.Second)
}

// RunWork sleeps for work dilated by the core's interference — the
// wall-clock time a guest needs to complete `work` of CPU on core.
func (s *Sched) RunWork(clock *sim.Clock, core int, work time.Duration) time.Duration {
	d := time.Duration(float64(work) * s.Dilation(core))
	clock.Sleep(d)
	return d
}

// Utilization reports host CPU utilization as a fraction of the whole
// machine (Fig. 15's metric, gathered via iostat + xentop): Dom0's
// baseline plus every idle guest's reported duty cycle. Hypervisor
// context-switch overhead is mostly invisible to those tools, so it
// is intentionally not included (the paper's Fig. 11 and Fig. 15
// measure different things; see DESIGN.md).
func (s *Sched) Utilization() float64 {
	total := costs.Dom0UtilBase + s.utilDuty
	max := float64(s.machine.Cores)
	if total > max {
		total = max
	}
	return total / max
}
