// Package lightvm is a complete, simulation-backed reproduction of
// "My VM is Lighter (and Safer) than your Container" (Manco et al.,
// SOSP 2017): the Xen control plane and its LightVM redesign (noxs,
// chaos, split toolstack, xendevd), the Tinyx build system, the
// unikernel guest fleet, container/process baselines, and a harness
// that regenerates every figure of the paper's evaluation.
//
// The control plane runs for real — a transactional XenStore with
// watches, the split-driver handshake, domain shells pooled by the
// chaos daemon, page-granular memory accounting — while time is
// virtual: a deterministic clock charged by the calibrated cost model
// in internal/costs. See DESIGN.md for the substitution rationale.
//
// Quick start:
//
//	host, _ := lightvm.NewHost(lightvm.Xeon4, 1)
//	host.EnsureFlavor(lightvm.Daytime(), lightvm.ModeLightVM)
//	vm, _ := host.CreateVM(lightvm.ModeLightVM, "web1", lightvm.Daytime())
//	fmt.Println(vm.CreateTime + vm.BootTime) // ≈ 4ms of virtual time
package lightvm

import (
	"fmt"

	"lightvm/internal/apps"
	"lightvm/internal/cluster"
	"lightvm/internal/core"
	"lightvm/internal/experiments"
	"lightvm/internal/faults"
	"lightvm/internal/guest"
	"lightvm/internal/metrics"
	"lightvm/internal/migrate"
	"lightvm/internal/minipy"
	"lightvm/internal/netstack"
	"lightvm/internal/profiling"
	"lightvm/internal/sched"
	"lightvm/internal/sim"
	"lightvm/internal/tinyx"
	"lightvm/internal/tlsterm"
	"lightvm/internal/toolstack"
	"lightvm/internal/trace"
	"lightvm/internal/traffic"
)

// Core types, re-exported for library users.
type (
	// Host is one simulated machine with its hypervisor, toolstacks,
	// software switch, container engine and process runner.
	Host = core.Host
	// Machine describes a testbed host (cores, Dom0 cores, memory).
	Machine = sched.Machine
	// Mode selects a toolstack configuration (Fig. 9 legend).
	Mode = toolstack.Mode
	// VM is a toolstack-managed guest.
	VM = toolstack.VM
	// Image is a bootable guest image.
	Image = guest.Image
	// Checkpoint is a saved guest (save/restore/migrate).
	Checkpoint = migrate.Checkpoint
	// Clock is the virtual time source shared by co-hosted machines.
	Clock = sim.Clock
	// TinyxResult is a finished Tinyx image build.
	TinyxResult = tinyx.BuildResult
	// TraceLog records control-plane operations (Host.EnableTrace).
	TraceLog = trace.Log
	// VMConfig is a parsed guest configuration file (xl or chaos
	// format).
	VMConfig = toolstack.VMConfig
	// Cluster manages a fleet of hosts on one timeline (§7.1's
	// mobile-edge deployment): balanced placement, handover
	// migrations, rebalancing.
	Cluster = cluster.Cluster
)

// NewCluster creates an empty host fleet on clock.
func NewCluster(clock *Clock) *Cluster { return cluster.New(clock) }

// UnmarshalCheckpoint parses a checkpoint serialized with
// Checkpoint.Marshal (ship checkpoints between processes or hosts).
var UnmarshalCheckpoint = migrate.UnmarshalCheckpoint

// ParseVMConfig parses a guest configuration file, auto-detecting the
// xl ('key = value') or chaos ('key value') format. Resolve the result
// to a bootable image with VMConfig.ResolveImage.
var ParseVMConfig = toolstack.ParseConfig

// Toolstack configurations.
const (
	// ModeXL is out-of-the-box Xen (xl/libxl + XenStore + hotplug
	// scripts).
	ModeXL = toolstack.ModeXL
	// ModeChaosXS is the lean chaos toolstack over the XenStore.
	ModeChaosXS = toolstack.ModeChaosXS
	// ModeChaosSplit adds the split toolstack's pre-created shells.
	ModeChaosSplit = toolstack.ModeChaosSplit
	// ModeChaosNoXS replaces the XenStore with noxs.
	ModeChaosNoXS = toolstack.ModeChaosNoXS
	// ModeLightVM is the full system: chaos + noxs + split toolstack.
	ModeLightVM = toolstack.ModeLightVM
)

// The paper's testbed machines.
var (
	// Xeon4 is the 4-core Intel Xeon E5-1630 v3 (Figs. 4, 5, 9, 14, 15).
	Xeon4 = sched.Xeon4
	// Xeon4Ckpt is the same box with 2 Dom0 cores (Figs. 12, 13).
	Xeon4Ckpt = sched.Xeon4Ckpt
	// Amd64 is the 64-core AMD Opteron host (Fig. 10, 8000 guests).
	Amd64 = sched.Amd64
	// Xeon14 is the 14-core Xeon E5-2690 v4 (§7 use cases).
	Xeon14 = sched.Xeon14
)

// NewHost builds a simulated machine; seed pins all randomized
// behaviour so runs are reproducible.
func NewHost(m Machine, seed uint64) (*Host, error) { return core.NewHost(m, seed) }

// NewClock creates a shared virtual clock for multi-host setups.
func NewClock() *Clock { return sim.NewClock() }

// NewHostOn builds a machine on an existing clock (needed for
// migration between hosts).
func NewHostOn(clock *Clock, m Machine, seed uint64) (*Host, error) {
	return core.NewHostOn(clock, m, seed)
}

// Guest image catalog (§3, §6, §7 of the paper).
var (
	// Noop is the 2.3 ms-floor unikernel with no devices.
	Noop = guest.Noop
	// Daytime is the 480 KB / 3.6 MB time-of-day unikernel.
	Daytime = guest.Daytime
	// Minipython is the MicroPython unikernel (compute service).
	Minipython = guest.Minipython
	// ClickOSFirewall is the §7.1 personal-firewall VM.
	ClickOSFirewall = guest.ClickOSFirewall
	// TLSUnikernel is the axtls/lwip termination proxy.
	TLSUnikernel = guest.TLSUnikernel
	// TinyxNoop is the 9.5 MB Tinyx Linux VM.
	TinyxNoop = guest.TinyxNoop
	// TinyxMicropython is Tinyx with the interpreter installed.
	TinyxMicropython = guest.TinyxMicropython
	// TinyxTLS is the Tinyx TLS terminator.
	TinyxTLS = guest.TinyxTLS
	// DebianMinimal is the 1.1 GB reference VM.
	DebianMinimal = guest.DebianMinimal
	// ImageByName resolves a catalog image by name.
	ImageByName = guest.ByName
)

// Experiments lists the figure/table generators available to
// RunExperiment (fig01..fig18, tbl-guests).
func Experiments() []string { return experiments.IDs() }

// ExperimentResult is one regenerated figure.
type ExperimentResult struct {
	// ID is the paper figure identifier (e.g. "fig09").
	ID string
	// Paper summarizes what the paper reports for this figure.
	Paper string
	// Output is the rendered data table.
	Output string
	// Plot is an ASCII rendering of the same data (log-y), for
	// terminal consumption.
	Plot string
	// WallMS is the real time the generator took, in milliseconds
	// (set by RunExperiments).
	WallMS float64
	// VirtualMS is the figure's simulated makespan in milliseconds
	// (0 = not instrumented by the generator).
	VirtualMS float64
	// Allocs is the generator's heap-allocation count: exact on
	// sequential runs (parallel == 1), a sampling-based estimate on
	// parallel runs.
	Allocs uint64
	// Profile is the per-figure pprof attribution report; nil unless
	// the run requested profiling (see ExperimentOptions).
	Profile *ExperimentProfile
	// CrashSites tallies, per labeled toolstack crash point, how often
	// the generator reached it and how often a crash was injected
	// there. Nil unless the figure arms toolstack-crash faults
	// (currently ext-churn).
	CrashSites []CrashSiteStat
	// Serving aggregates a traffic-serving figure's latency tail and
	// rejection breakdown (ext-serve, ext-overload); nil otherwise.
	// lightvm-bench -json carries it so benchdiff can gate p99/p999
	// and reject-rate regressions.
	Serving *ServingSummary
}

// ServingSummary is a serving figure's aggregate traffic outcome:
// latency quantiles, rejections by reason, retry and brownout
// accounting.
type ServingSummary = experiments.ServingSummary

// CrashSiteStat is one labeled crash point's opportunity/injection
// counters.
type CrashSiteStat = faults.SiteStat

// SubsystemCost is one simulator subsystem's share of a profile
// dimension (flat CPU time or allocated heap bytes).
type SubsystemCost struct {
	// Subsystem is the bucket: "internal/<pkg>" for simulator
	// packages, "lightvm" for the facade, "runtime", "std" or "other".
	Subsystem string `json:"subsystem"`
	// Value is nanoseconds (CPU) or sampled bytes (heap).
	Value int64 `json:"value"`
	// Percent is the bucket's share of the figure's total (0–100).
	Percent float64 `json:"percent"`
}

// FunctionCost is one function's share of a figure's heap delta, with
// the subsystem it bills to attached.
type FunctionCost struct {
	// Function is the fully-qualified symbol as pprof reports it.
	Function string `json:"function"`
	// Subsystem is the function's bucket (the store's intern and pool
	// tables bill to "internal/xenstore" like the rest of the package).
	Subsystem string `json:"subsystem"`
	// Value is sampled allocated bytes.
	Value int64 `json:"value"`
	// Percent is the function's share of the figure's heap delta
	// (0–100).
	Percent float64 `json:"percent"`
}

// ExperimentProfile is the per-figure profiling report: where the raw
// pprof files were written (open them with `go tool pprof`) and the
// top-5 subsystems by flat CPU time and heap bytes.
type ExperimentProfile struct {
	// CPUFile/HeapFile are the captured profile paths ("" if that mode
	// was off).
	CPUFile  string `json:"cpu_file,omitempty"`
	HeapFile string `json:"heap_file,omitempty"`
	// CPU and Heap rank subsystems (top-5, deterministic order). CPU
	// counts only samples labeled with this figure's id; Heap is the
	// pre/post alloc_space delta.
	CPU  []SubsystemCost `json:"cpu,omitempty"`
	Heap []SubsystemCost `json:"heap,omitempty"`
	// HeapTopFuncs drills the heap delta down to the top-10 flat
	// allocation sites (function-level).
	HeapTopFuncs []FunctionCost `json:"heap_top_funcs,omitempty"`
	// CPUTotalNanos is the figure's own sampled CPU time;
	// CPUForeignNanos is what else landed in the raw profile (on
	// parallel runs, concurrent unprofiled figures).
	CPUTotalNanos   int64 `json:"cpu_total_nanos,omitempty"`
	CPUForeignNanos int64 `json:"cpu_foreign_nanos,omitempty"`
	// HeapDeltaBytes is the sampled alloc_space growth across the run.
	HeapDeltaBytes int64 `json:"heap_delta_bytes,omitempty"`
	// Text is a one-line rendering suitable for terminal output.
	Text string `json:"-"`
}

func toExperimentResult(res experiments.Result) ExperimentResult {
	out := ExperimentResult{
		ID:        res.ID,
		Paper:     res.Paper,
		Output:    res.Table.String(),
		WallMS:     float64(res.Wall) / 1e6,
		VirtualMS:  res.VirtualMS,
		Allocs:     res.Allocs,
		CrashSites: res.CrashSites,
		Serving:    res.Serving,
	}
	if tab, ok := res.Table.(*metrics.Table); ok {
		// Most of the paper's time figures are log-scale.
		out.Plot = tab.Plot(72, 18, true)
	}
	if sum := res.Profile; sum != nil {
		costs := func(in []profiling.Cost) []SubsystemCost {
			out := make([]SubsystemCost, len(in))
			for i, c := range in {
				out[i] = SubsystemCost{Subsystem: c.Subsystem, Value: c.Value, Percent: c.Percent}
			}
			return out
		}
		funcs := make([]FunctionCost, len(sum.HeapTopFuncs))
		for i, fc := range sum.HeapTopFuncs {
			funcs[i] = FunctionCost{Function: fc.Function, Subsystem: fc.Subsystem, Value: fc.Value, Percent: fc.Percent}
		}
		out.Profile = &ExperimentProfile{
			CPUFile:         sum.CPUFile,
			HeapFile:        sum.HeapFile,
			CPU:             costs(sum.CPU),
			Heap:            costs(sum.Heap),
			HeapTopFuncs:    funcs,
			CPUTotalNanos:   sum.CPUTotalNanos,
			CPUForeignNanos: sum.CPUForeignNanos,
			HeapDeltaBytes:  sum.HeapDeltaBytes,
			Text:            sum.String(),
		}
	}
	return out
}

// FsckViolation is one broken cross-layer invariant found by the
// consistency checker: a store node, hypervisor domain, memory
// charge, event channel, grant or pooled shell that no live guest
// accounts for.
type FsckViolation = toolstack.Violation

// Fsck audits a quiescent host's cross-layer invariants and returns
// every violation (empty = consistent). Run it after lifecycle
// operations have finished, not mid-operation.
func Fsck(h *Host) []FsckViolation { return toolstack.Fsck(h.Env) }

// SetEnvTracking switches global environment tracking on or off
// (clearing any tracked list). With tracking on, every environment
// built afterwards — including the ones experiment generators build
// internally — is registered for FsckTracked. Tracking pins
// environments in memory; leave it off outside consistency gates.
var SetEnvTracking = toolstack.SetEnvTracking

// FsckTracked audits every live tracked environment (see
// SetEnvTracking) and returns how many were checked plus all
// violations found.
var FsckTracked = toolstack.FsckTracked

// RunExperiment regenerates one paper figure at the given scale
// (1.0 = the paper's guest counts; smaller is proportionally cheaper).
func RunExperiment(id string, scale float64, seed uint64) (ExperimentResult, error) {
	res, err := experiments.Run(id, experiments.Options{Scale: scale, Seed: seed})
	if err != nil {
		return ExperimentResult{}, err
	}
	return toExperimentResult(res), nil
}

// RunExperiments regenerates the given figures (all registered ones if
// ids is empty) on a bounded worker pool. parallel bounds the pool:
// 0 uses GOMAXPROCS, 1 forces sequential execution. Results come back
// in input order and are byte-identical regardless of parallelism —
// every figure (and every series within a figure) owns its own virtual
// clock, host and RNG.
func RunExperiments(ids []string, scale float64, seed uint64, parallel int) ([]ExperimentResult, error) {
	return RunExperimentsOpts(ids, ExperimentOptions{Scale: scale, Seed: seed, Parallel: parallel})
}

// ExperimentOptions configures RunExperimentsOpts. The zero value of
// Scale/Seed falls back to full scale / seed 1.
type ExperimentOptions struct {
	// Scale multiplies the paper's guest counts (1.0 = full scale).
	Scale float64
	// Seed drives all randomized workload choices.
	Seed uint64
	// Parallel bounds the worker pool (0 = GOMAXPROCS, 1 = sequential).
	Parallel int
	// Shards pins the engine worker count for figures built on the
	// sharded cluster core (ext-cluster). 0 = the figure's default
	// sweep over {1, 2, 8} with an in-run byte-equality check; any
	// value yields an identical table.
	Shards int
	// ProfileCPU/ProfileHeap capture a pprof CPU/heap profile per
	// figure into ProfileDir ("." when empty) as <id>.cpu.pb.gz /
	// <id>.heap.pb.gz and attach a subsystem attribution summary to
	// each ExperimentResult.Profile. CPU profiling is process-global,
	// so on parallel runs profiled figures serialize through a token
	// while unprofiled work proceeds; the raw CPU profile may carry
	// foreign samples (reported, not hidden — see
	// ExperimentProfile.CPUForeignNanos).
	ProfileCPU  bool
	ProfileHeap bool
	ProfileDir  string
	// ProfileFigures restricts profiling to these figure ids (empty =
	// every figure in the run).
	ProfileFigures []string
}

// RunExperimentsOpts is RunExperiments with the full option set,
// including per-figure pprof profiling.
func RunExperimentsOpts(ids []string, o ExperimentOptions) ([]ExperimentResult, error) {
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	res, err := experiments.RunMany(ids, experiments.Options{
		Scale: o.Scale, Seed: o.Seed, Parallel: o.Parallel, Shards: o.Shards,
		Profile: experiments.ProfileOptions{
			CPU: o.ProfileCPU, Heap: o.ProfileHeap, Dir: o.ProfileDir, Only: o.ProfileFigures,
		},
	})
	if err != nil {
		return nil, err
	}
	out := make([]ExperimentResult, len(res))
	for i, r := range res {
		out[i] = toExperimentResult(r)
	}
	return out, nil
}

// Open-loop traffic serving (the engine behind the ext-serve figure):
// seeded arrival processes drive one host with per-request guests.

type (
	// TrafficConfig parameterizes one open-loop serving run (mode,
	// arrival process, admission limits, autoscaler policy).
	TrafficConfig = traffic.Config
	// TrafficStats is a run's outcome: latency histogram, timeout and
	// rejection counters, warm-shell trajectory.
	TrafficStats = traffic.Stats
	// TrafficMode selects the serving backend (VM per request, warm
	// pools, container, process).
	TrafficMode = traffic.Mode
	// TrafficReject is the typed admission-backpressure error.
	TrafficReject = traffic.Reject
	// RejectReason classifies admission backpressure (backlog,
	// capacity, overload, quota, retry-budget).
	RejectReason = traffic.RejectReason
	// OverloadState is the serving plane's degradation level
	// (Normal → Brownout → Shedding), surfaced in TrafficStats.
	OverloadState = traffic.OverloadState
	// TrafficDefense toggles the overload defenses per serving run:
	// AIMD adaptive admission, retry budgets, two-priority shedding
	// and brownout serving. The zero value reproduces the undefended
	// plane exactly.
	TrafficDefense = traffic.Defense
	// TrafficClass is a request's scheduling class for two-priority
	// shedding (paid sheds last, batch first).
	TrafficClass = traffic.Class
	// PhaseRate is one segment of a phased (piecewise-Poisson)
	// arrival process.
	PhaseRate = traffic.PhaseRate
	// TrafficPhaseStats is one accounting phase's slice of a serving
	// run (see TrafficConfig.PhaseBounds).
	TrafficPhaseStats = traffic.PhaseStats
	// Arrivals is an arrival process: seeded, deterministic,
	// allocation-free gap generation on the virtual clock.
	Arrivals = traffic.Arrivals
	// AutoscalerConfig tunes the warm-pool autoscaler (policy, depth
	// bounds, prediction horizon).
	AutoscalerConfig = toolstack.AutoscalerConfig
)

// Serving backends and autoscaler policies.
const (
	VMPerRequest    = traffic.VMPerRequest
	PoolReactive    = traffic.PoolReactive
	PoolPredictive  = traffic.PoolPredictive
	ContainerMode   = traffic.Container
	ProcessMode     = traffic.Process
	VMPerRequestXL  = traffic.VMPerRequestXL
	ScaleReactive   = toolstack.ScaleReactive
	ScalePredictive = toolstack.ScalePredictive
)

// Admission reject reasons (TrafficReject.Reason).
const (
	RejectBacklog  = traffic.RejectBacklog
	RejectCapacity = traffic.RejectCapacity
	RejectOverload = traffic.RejectOverload
	RejectQuota    = traffic.RejectQuota
	RejectBudget   = traffic.RejectBudget
)

// Overload states (the Normal → Brownout → Shedding ladder).
const (
	StateNormal   = traffic.StateNormal
	StateBrownout = traffic.StateBrownout
	StateShedding = traffic.StateShedding
)

// Request classes for two-priority shedding.
const (
	ClassPaid  = traffic.ClassPaid
	ClassBatch = traffic.ClassBatch
)

// EstimateCapacity measures a serving mode's sustainable request rate
// on an idle scratch host — the denominator behind "offered load at
// 2× capacity" in overload scenarios.
var EstimateCapacity = traffic.EstimateCapacity

// Arrival-process constructors.
var (
	// NewPoisson is memoryless traffic at a fixed rate.
	NewPoisson = traffic.NewPoisson
	// NewMMPP is two-state bursty traffic; instances sharing a modSeed
	// burst at the same virtual times (fleet-synchronized crowds).
	NewMMPP = traffic.NewMMPP
	// NewTrace replays a recorded gap sequence.
	NewTrace = traffic.NewTrace
	// NewPhased is piecewise-Poisson traffic: the rate switches at
	// fixed virtual-time boundaries (pre-burst / burst / post-burst
	// timelines for overload studies).
	NewPhased = traffic.NewPhased
	// FlashTrace synthesizes a replayable flash-crowd trace.
	FlashTrace = traffic.FlashTrace
)

// ServeTraffic runs one open-loop serving timeline on a fresh host:
// arrivals keep coming on schedule whether or not the control plane
// keeps up, each one boots (or pool-takes) a real guest, gets its
// response, and is torn down. Returns the run's stats and the host
// (for Fsck and inspection).
func ServeTraffic(cfg TrafficConfig) (*TrafficStats, *Host, error) {
	return traffic.Serve(cfg)
}

// BuildTinyx runs the §3.2 build system: dependency discovery,
// overlay install over a debootstrap base, BusyBox underlay merge,
// and the tinyconfig kernel shrink loop. app is a package name from
// the synthetic Debian universe (e.g. "nginx", "micropython");
// platform is "xen" or "kvm".
func BuildTinyx(app, platform string) (*TinyxResult, error) {
	return tinyx.Build(tinyx.DebianUniverse(), tinyx.BuildConfig{App: app, Platform: platform})
}

// TinyxApps lists the application packages BuildTinyx accepts.
func TinyxApps() []string { return tinyx.DebianUniverse().Names() }

// Use-case building blocks (§7).

type (
	// Firewall is the ClickOS-style per-user packet filter (§7.1).
	Firewall = apps.Firewall
	// FirewallAction is a filter verdict (Allow/Deny).
	FirewallAction = apps.Action
	// TLSTerminator is the §7.3 termination proxy state machine.
	TLSTerminator = tlsterm.Terminator
	// NetStack selects a guest TCP/IP implementation.
	NetStack = netstack.Stack
)

// Firewall verdicts and network stacks.
const (
	Allow    = apps.Allow
	Deny     = apps.Deny
	LinuxTCP = netstack.LinuxTCP
	Lwip     = netstack.Lwip
)

// NewPersonalFirewall builds a per-subscriber firewall configuration.
var NewPersonalFirewall = apps.NewPersonalFirewall

// NewTLSTerminator creates a termination endpoint on a host's clock
// using the given guest network stack.
func NewTLSTerminator(h *Host, stack NetStack) *TLSTerminator {
	return tlsterm.New(h.Clock, stack)
}

// RunPython executes a program on the Minipython interpreter (the
// §7.4 compute-service payload engine) and returns its output.
func RunPython(program string) (string, error) {
	res, err := minipy.Run(program, 0)
	if err != nil {
		return "", fmt.Errorf("lightvm: %w", err)
	}
	return res.Output, nil
}

// ApproxEProgram is the paper's compute-service job: an approximation
// of e in Minipython.
const ApproxEProgram = minipy.ApproxEProgram
