module lightvm

go 1.22
