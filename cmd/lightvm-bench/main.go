// Command lightvm-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	lightvm-bench -exp fig09            # one figure at paper scale
//	lightvm-bench -exp all -scale 0.1   # everything, 10% guest counts
//	lightvm-bench -list
//
// Each figure prints as a fixed-width table with the paper's series as
// columns, followed by calibration notes. Figure numbers follow the
// paper (fig01..fig18 plus tbl-guests).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lightvm"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (figNN, tbl-guests) or 'all'")
	scale := flag.Float64("scale", 1.0, "guest-count scale relative to the paper (1.0 = full)")
	seed := flag.Uint64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	plot := flag.Bool("plot", false, "render each figure as an ASCII chart too")
	flag.Parse()

	if *list {
		for _, id := range lightvm.Experiments() {
			fmt.Println(id)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = lightvm.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		res, err := lightvm.RunExperiment(id, *scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightvm-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("%s", res.Output)
		if *plot && res.Plot != "" {
			fmt.Println(res.Plot)
		}
		fmt.Printf("paper: %s\n", res.Paper)
		fmt.Printf("(generated in %v wall time)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
