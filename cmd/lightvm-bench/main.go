// Command lightvm-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	lightvm-bench -exp fig09            # one figure at paper scale
//	lightvm-bench -exp all -scale 0.1   # everything, 10% guest counts
//	lightvm-bench -exp all -parallel 1  # force a sequential replay
//	lightvm-bench -exp all -json        # also write BENCH_<date>.json
//	lightvm-bench -list
//
// Each figure prints as a fixed-width table with the paper's series as
// columns, followed by calibration notes. Figure numbers follow the
// paper (fig01..fig18 plus tbl-guests). Figures run on a bounded
// worker pool (-parallel; 0 = one worker per core) and print in a
// fixed order, byte-identical to a sequential run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lightvm"
)

// benchFigure is one figure's timing record in the -json report.
type benchFigure struct {
	ID        string  `json:"id"`
	WallMS    float64 `json:"wall_ms"`
	Allocs    uint64  `json:"allocs"`
	VirtualMS float64 `json:"virtual_ms"`
}

// benchReport is the -json output schema.
type benchReport struct {
	Date        string        `json:"date"`
	Scale       float64       `json:"scale"`
	Seed        uint64        `json:"seed"`
	Parallel    int           `json:"parallel"`
	TotalWallMS float64       `json:"total_wall_ms"`
	Figures     []benchFigure `json:"figures"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id (figNN, tbl-guests) or 'all'")
	scale := flag.Float64("scale", 1.0, "guest-count scale relative to the paper (1.0 = full)")
	seed := flag.Uint64("seed", 1, "workload seed")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = one per core, 1 = sequential)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	plot := flag.Bool("plot", false, "render each figure as an ASCII chart too")
	jsonOut := flag.Bool("json", false, "write per-figure timings to BENCH_<date>.json")
	flag.Parse()

	if *list {
		for _, id := range lightvm.Experiments() {
			fmt.Println(id)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = lightvm.Experiments()
	}
	start := time.Now()
	results, err := lightvm.RunExperiments(ids, *scale, *seed, *parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lightvm-bench: %v\n", err)
		os.Exit(1)
	}
	total := time.Since(start)
	for _, res := range results {
		fmt.Printf("%s", res.Output)
		if *plot && res.Plot != "" {
			fmt.Println(res.Plot)
		}
		fmt.Printf("paper: %s\n", res.Paper)
		fmt.Printf("(generated in %v wall time)\n\n", time.Duration(res.WallMS*1e6).Round(time.Millisecond))
	}
	fmt.Printf("total: %d figure(s) in %v wall time\n", len(results), total.Round(time.Millisecond))

	if *jsonOut {
		report := benchReport{
			Date:        time.Now().Format("2006-01-02"),
			Scale:       *scale,
			Seed:        *seed,
			Parallel:    *parallel,
			TotalWallMS: float64(total) / 1e6,
		}
		for _, res := range results {
			report.Figures = append(report.Figures, benchFigure{
				ID: res.ID, WallMS: res.WallMS, Allocs: res.Allocs, VirtualMS: res.VirtualMS,
			})
		}
		name := fmt.Sprintf("BENCH_%s.json", report.Date)
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lightvm-bench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(name, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lightvm-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", name)
	}
}
