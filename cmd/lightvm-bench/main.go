// Command lightvm-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	lightvm-bench -exp fig09            # one figure at paper scale
//	lightvm-bench -exp all -scale 0.1   # everything, 10% guest counts
//	lightvm-bench -exp all -parallel 1  # force a sequential replay
//	lightvm-bench -exp all -json        # also write BENCH_<date>.json
//	lightvm-bench -exp all -json -out results/bench.json
//	lightvm-bench -exp fig12a -profile=cpu,heap -profile-dir profiles
//	lightvm-bench -exp ext-churn -scale 0.1 -fsck  # consistency gate
//	lightvm-bench -list
//
// Each figure prints as a fixed-width table with the paper's series as
// columns, followed by calibration notes. Figure numbers follow the
// paper (fig01..fig18 plus tbl-guests). Figures run on a bounded
// worker pool (-parallel; 0 = one worker per core) and print in a
// fixed order, byte-identical to a sequential run.
//
// -profile captures a pprof CPU and/or heap profile per figure
// (<id>.cpu.pb.gz / <id>.heap.pb.gz under -profile-dir; open them with
// `go tool pprof`) and adds a per-figure subsystem attribution summary
// to the output and the -json report. CPU profiling is process-global,
// so on parallel runs profiled figures take turns on a profiling token
// while unprofiled figures keep the pool busy; use -profile-figs to
// profile a subset, or -parallel 1 for fully clean profiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"lightvm"
)

// benchFigure is one figure's timing record in the -json report.
type benchFigure struct {
	ID         string                     `json:"id"`
	WallMS     float64                    `json:"wall_ms"`
	Allocs     uint64                     `json:"allocs"`
	VirtualMS  float64                    `json:"virtual_ms"`
	Profile    *lightvm.ExperimentProfile `json:"profile,omitempty"`
	CrashSites []lightvm.CrashSiteStat    `json:"crash_sites,omitempty"`
	// Serving carries a traffic figure's latency tail and rejection
	// breakdown (ext-serve, ext-overload) for the benchdiff tail gate.
	Serving *lightvm.ServingSummary `json:"serving,omitempty"`
}

// benchFsck is the -fsck gate's summary in the -json report.
type benchFsck struct {
	Envs       int      `json:"envs"`
	Violations []string `json:"violations"`
}

// benchReport is the -json output schema.
type benchReport struct {
	Date        string        `json:"date"`
	Scale       float64       `json:"scale"`
	Seed        uint64        `json:"seed"`
	Parallel    int           `json:"parallel"`
	Shards      int           `json:"shards,omitempty"`
	TotalWallMS float64       `json:"total_wall_ms"`
	Figures     []benchFigure `json:"figures"`
	Fsck        *benchFsck    `json:"fsck,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// formatReasons renders a rejected-by-reason map in deterministic key
// order, or "" when empty.
func formatReasons(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(" (")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %d", k, m[k])
	}
	b.WriteString(")")
	return b.String()
}

// run is the testable CLI body: parse args, run figures, render. It
// returns the process exit code (0 ok, 1 runtime failure, 2 flag
// error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lightvm-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id (figNN, tbl-guests) or 'all'")
	scale := fs.Float64("scale", 1.0, "guest-count scale relative to the paper (1.0 = full)")
	seed := fs.Uint64("seed", 1, "workload seed")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = one per core, 1 = sequential)")
	shards := fs.Int("shards", 0, "engine worker count for sharded-cluster figures (0 = sweep 1/2/8 with in-run equality check)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	plot := fs.Bool("plot", false, "render each figure as an ASCII chart too")
	jsonOut := fs.Bool("json", false, "write per-figure timings to BENCH_<date>.json (see -out)")
	out := fs.String("out", "", "path for the -json report (default BENCH_<date>.json in the current directory)")
	profile := fs.String("profile", "", "comma-separated pprof captures per figure: cpu, heap")
	profileDir := fs.String("profile-dir", "profiles", "directory for <id>.cpu.pb.gz / <id>.heap.pb.gz files")
	profileFigs := fs.String("profile-figs", "", "comma-separated figure ids to profile (default: all figures in the run)")
	fsck := fs.Bool("fsck", false, "audit every environment's cross-layer invariants after the run; any violation fails the command")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, id := range lightvm.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}

	opts := lightvm.ExperimentOptions{
		Scale: *scale, Seed: *seed, Parallel: *parallel, Shards: *shards,
		ProfileDir: *profileDir,
	}
	if *profile != "" {
		for _, mode := range strings.Split(*profile, ",") {
			switch strings.TrimSpace(mode) {
			case "cpu":
				opts.ProfileCPU = true
			case "heap":
				opts.ProfileHeap = true
			case "":
			default:
				fmt.Fprintf(stderr, "lightvm-bench: unknown -profile mode %q (want cpu, heap)\n", mode)
				return 2
			}
		}
	}
	if *profileFigs != "" {
		for _, id := range strings.Split(*profileFigs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				opts.ProfileFigures = append(opts.ProfileFigures, id)
			}
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = lightvm.Experiments()
	}
	if *fsck {
		lightvm.SetEnvTracking(true)
		defer lightvm.SetEnvTracking(false)
	}
	start := time.Now()
	results, err := lightvm.RunExperimentsOpts(ids, opts)
	if err != nil {
		fmt.Fprintf(stderr, "lightvm-bench: %v\n", err)
		return 1
	}
	total := time.Since(start)
	for _, res := range results {
		fmt.Fprintf(stdout, "%s", res.Output)
		if *plot && res.Plot != "" {
			fmt.Fprintln(stdout, res.Plot)
		}
		fmt.Fprintf(stdout, "paper: %s\n", res.Paper)
		if res.Profile != nil {
			fmt.Fprint(stdout, res.Profile.Text)
		}
		if s := res.Serving; s != nil {
			fmt.Fprintf(stdout, "serving: p50 %.1fms p99 %.1fms p999 %.1fms, %d arrived, reject %.2f%%%s",
				s.P50MS, s.P99MS, s.P999MS, s.Arrived, s.RejectPct, formatReasons(s.RejectedByReason))
			if s.BrownoutMS > 0 || s.SheddingMS > 0 {
				fmt.Fprintf(stdout, ", brownout %.0fms shedding %.0fms", s.BrownoutMS, s.SheddingMS)
			}
			fmt.Fprintln(stdout)
		}
		if len(res.CrashSites) > 0 {
			var opp, inj uint64
			for _, st := range res.CrashSites {
				opp += st.Opportunities
				inj += st.Injected
			}
			fmt.Fprintf(stdout, "crash points: %d sites, %d injections / %d opportunities\n", len(res.CrashSites), inj, opp)
		}
		fmt.Fprintf(stdout, "(generated in %v wall time)\n\n", time.Duration(res.WallMS*1e6).Round(time.Millisecond))
	}
	fmt.Fprintf(stdout, "total: %d figure(s) in %v wall time\n", len(results), total.Round(time.Millisecond))

	var fsckRes *benchFsck
	if *fsck {
		envs, violations := lightvm.FsckTracked()
		fsckRes = &benchFsck{Envs: envs, Violations: make([]string, 0, len(violations))}
		for _, v := range violations {
			fsckRes.Violations = append(fsckRes.Violations, v.String())
		}
		fmt.Fprintf(stdout, "fsck: %d environment(s) audited, %d violation(s)\n", envs, len(violations))
	}

	if *jsonOut {
		report := benchReport{
			Date:        time.Now().Format("2006-01-02"),
			Scale:       *scale,
			Seed:        *seed,
			Parallel:    *parallel,
			Shards:      *shards,
			TotalWallMS: float64(total) / 1e6,
		}
		report.Fsck = fsckRes
		for _, res := range results {
			report.Figures = append(report.Figures, benchFigure{
				ID: res.ID, WallMS: res.WallMS, Allocs: res.Allocs,
				VirtualMS: res.VirtualMS, Profile: res.Profile,
				CrashSites: res.CrashSites, Serving: res.Serving,
			})
		}
		name := *out
		if name == "" {
			name = fmt.Sprintf("BENCH_%s.json", report.Date)
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "lightvm-bench: %v\n", err)
			return 1
		}
		if dir := filepath.Dir(name); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(stderr, "lightvm-bench: %v\n", err)
				return 1
			}
		}
		if err := os.WriteFile(name, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "lightvm-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", name)
	}
	if fsckRes != nil && len(fsckRes.Violations) > 0 {
		for _, v := range fsckRes.Violations {
			fmt.Fprintf(stderr, "lightvm-bench: fsck violation: %s\n", v)
		}
		return 1
	}
	return 0
}
