package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// runCLI invokes the CLI body in-process and returns (stdout, stderr,
// exit code).
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), code
}

func TestList(t *testing.T) {
	out, errOut, code := runCLI(t, "-list")
	if code != 0 || errOut != "" {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	ids := strings.Fields(out)
	for _, want := range []string{"fig01", "fig09", "fig12a", "tbl-guests", "ext-clone"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("-list missing %s:\n%s", want, out)
		}
	}
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("-list output unsorted:\n%s", out)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	_, errOut, code := runCLI(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", code, errOut)
	}
	if !strings.Contains(errOut, "flag") {
		t.Fatalf("stderr %q has no flag diagnostic", errOut)
	}
}

func TestBadProfileModeExitsTwo(t *testing.T) {
	_, errOut, code := runCLI(t, "-exp", "fig01", "-profile", "gpu")
	if code != 2 || !strings.Contains(errOut, `unknown -profile mode "gpu"`) {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
}

func TestUnknownExperimentExitsOne(t *testing.T) {
	out, errOut, code := runCLI(t, "-exp", "fig99")
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stdout %q)", code, out)
	}
	if !strings.Contains(errOut, "unknown id") {
		t.Fatalf("stderr %q missing unknown-id diagnostic", errOut)
	}
}

func TestRunFigureWithJSONOut(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "nested", "bench.json")
	out, errOut, code := runCLI(t, "-exp", "fig01", "-scale", "0.05", "-seed", "3",
		"-parallel", "1", "-json", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"# ", "paper:", "total: 1 figure(s)", "wrote " + outPath} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
	buf, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("-out report not written: %v", err)
	}
	var report benchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if report.Scale != 0.05 || report.Seed != 3 || report.Parallel != 1 {
		t.Fatalf("report header %+v", report)
	}
	if len(report.Figures) != 1 || report.Figures[0].ID != "fig01" {
		t.Fatalf("report figures %+v", report.Figures)
	}
	if report.Figures[0].Profile != nil {
		t.Fatal("unprofiled run carries a profile in the report")
	}
}

func TestDefaultJSONPathIsDated(t *testing.T) {
	// Without -out the report lands in the CWD as BENCH_<date>.json.
	oldWD, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(oldWD)
	_, errOut, code := runCLI(t, "-exp", "fig01", "-scale", "0.05", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	want := "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
		t.Fatalf("default report missing: %v", err)
	}
}

func TestPlotFlag(t *testing.T) {
	out, errOut, code := runCLI(t, "-exp", "fig02", "-scale", "0.05", "-parallel", "1", "-plot")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	// The ASCII chart carries an x-axis legend and the log-scale tag.
	if !strings.Contains(out, "x=") || !strings.Contains(out, "(log y)") {
		t.Fatalf("-plot output missing chart:\n%s", out)
	}
}

func TestProfileEndToEnd(t *testing.T) {
	old := runtime.MemProfileRate
	runtime.MemProfileRate = 32 << 10
	defer func() { runtime.MemProfileRate = old }()

	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	out, errOut, code := runCLI(t, "-exp", "fig12a", "-scale", "0.05", "-parallel", "1",
		"-profile", "cpu,heap", "-profile-dir", dir, "-json", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, name := range []string{"fig12a.cpu.pb.gz", "fig12a.heap.pb.gz"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", name)
		}
	}
	if !strings.Contains(out, "profile heap:") {
		t.Fatalf("stdout missing attribution line:\n%s", out)
	}
	var report benchReport
	buf, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatal(err)
	}
	prof := report.Figures[0].Profile
	if prof == nil {
		t.Fatal("report has no profile block")
	}
	if prof.CPUFile == "" || prof.HeapFile == "" {
		t.Fatalf("profile paths missing: %+v", prof)
	}
	if len(prof.Heap) == 0 || prof.HeapDeltaBytes <= 0 {
		t.Fatalf("heap attribution empty: %+v", prof)
	}
	simulatorPkg := false
	for _, c := range prof.Heap {
		if strings.HasPrefix(c.Subsystem, "internal/") || c.Subsystem == "lightvm" {
			simulatorPkg = true
		}
	}
	if !simulatorPkg {
		t.Fatalf("no simulator package in heap top-5: %+v", prof.Heap)
	}
}

func TestFsckGateEndToEnd(t *testing.T) {
	// The churn figure arms toolstack crashes; -fsck must audit every
	// environment it built, report zero violations, and surface the
	// per-crash-point counters in both outputs.
	outPath := filepath.Join(t.TempDir(), "bench.json")
	out, errOut, code := runCLI(t, "-exp", "ext-churn", "-scale", "0.05", "-seed", "2",
		"-parallel", "1", "-fsck", "-json", "-out", outPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"crash points:", "fsck:", " 0 violation(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out)
		}
	}
	buf, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if report.Fsck == nil || report.Fsck.Envs == 0 {
		t.Fatalf("fsck summary missing or empty: %+v", report.Fsck)
	}
	if len(report.Fsck.Violations) != 0 {
		t.Fatalf("violations in report: %v", report.Fsck.Violations)
	}
	if len(report.Figures) != 1 || len(report.Figures[0].CrashSites) == 0 {
		t.Fatalf("crash_sites missing from figure record: %+v", report.Figures)
	}
	for _, st := range report.Figures[0].CrashSites {
		if st.Injected > st.Opportunities {
			t.Fatalf("site %s: injected %d > opportunities %d", st.Site, st.Injected, st.Opportunities)
		}
	}
}
