// Command tinyx-build runs the Tinyx build system (§3.2): it resolves
// an application's dependencies, assembles the distribution through
// the OverlayFS pipeline, shrinks a tinyconfig-based kernel behind a
// boot test, and prints the image manifest.
//
// Usage:
//
//	tinyx-build -app nginx -platform xen
//	tinyx-build -list
package main

import (
	"flag"
	"fmt"
	"os"

	"lightvm"
)

func main() {
	app := flag.String("app", "nginx", "application package to build the image around")
	platform := flag.String("platform", "xen", "target platform: xen | kvm")
	list := flag.Bool("list", false, "list available application packages")
	flag.Parse()

	if *list {
		fmt.Println("available packages:")
		for _, name := range lightvm.TinyxApps() {
			fmt.Println("  " + name)
		}
		return
	}

	res, err := lightvm.BuildTinyx(*app, *platform)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tinyx-build:", err)
		os.Exit(1)
	}
	fmt.Printf("tinyx image for %q (%s)\n", res.App, res.Kernel.Platform)
	fmt.Printf("  packages (%d): %v\n", len(res.Packages), res.Packages)
	fmt.Printf("  distribution:  %.2f MB (%d files)\n",
		float64(res.DistroBytes)/(1<<20), res.Distribution.NumFiles())
	fmt.Printf("  kernel:        %.2f MB (dropped %v after %d rebuild+boot-test rounds)\n",
		float64(res.KernelBytes)/(1<<20), res.Kernel.Dropped, res.Kernel.Rebuilds)
	fmt.Printf("  bootable image: %.2f MB (kernel + compressed initramfs)\n",
		float64(res.ImageBytes)/(1<<20))
}
