package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const oldReport = `{"date":"2026-08-06","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"fig12a","wall_ms":100,"allocs":1000},{"id":"fig12b","wall_ms":50,"allocs":500}]}`

func TestDiffPassesWithinThresholds(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", oldReport)
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"fig12a","wall_ms":120,"allocs":1050},{"id":"fig12b","wall_ms":40,"allocs":400}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{"-max-wall", "60", "-max-alloc", "10", oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "fig12a") {
		t.Fatalf("missing fig12a in output:\n%s", out.String())
	}
}

func TestDiffFailsOnWallRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", oldReport)
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"fig12a","wall_ms":200,"allocs":1000},{"id":"fig12b","wall_ms":50,"allocs":500}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{"-max-wall", "60", oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("missing REGRESSED marker:\n%s", out.String())
	}
}

func TestDiffWallFloorExemptsTinyFigures(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", `{"date":"2026-08-06","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"ext-clone","wall_ms":1.3,"allocs":4600}]}`)
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"ext-clone","wall_ms":2.9,"allocs":4600}]}`)
	var out, errb bytes.Buffer
	// +123% wall, but both sides are under the 5ms floor: no gate.
	if code := run([]string{"-max-wall", "60", oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (sub-floor figure); stderr: %s", code, errb.String())
	}
	// With the floor lowered beneath the figure, the same diff trips.
	if code := run([]string{"-max-wall", "60", "-min-wall-ms", "1", oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 once floor is below the figure", code)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", oldReport)
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"fig12a","wall_ms":100,"allocs":2000},{"id":"fig12b","wall_ms":50,"allocs":500}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{"-max-alloc", "10", oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestDiffRejectsMismatchedRuns(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", oldReport)
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.5,"seed":1,"parallel":0,
"figures":[{"id":"fig12a","wall_ms":100,"allocs":1000}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (scale mismatch)", code)
	}
	if code := run([]string{"-force", oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 under -force", code)
	}
}

const servingOld = `{"date":"2026-08-06","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"ext-overload","wall_ms":100,"allocs":1000,
"serving":{"p99_ms":110,"p999_ms":300,"reject_pct":12}}]}`

func TestDiffPassesIdenticalServingBlocks(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", servingOld)
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"ext-overload","wall_ms":105,"allocs":1000,
"serving":{"p99_ms":110,"p999_ms":300,"reject_pct":12}}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "p99") {
		t.Fatalf("tail columns absent for serving figure:\n%s", out.String())
	}
}

func TestDiffFailsOnTailRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", servingOld)
	// p99 +36% against the default 15% tail gate; wall/allocs unchanged.
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"ext-overload","wall_ms":100,"allocs":1000,
"serving":{"p99_ms":150,"p999_ms":300,"reject_pct":12}}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("missing REGRESSED marker:\n%s", out.String())
	}
	// A raised -max-tail lets the same diff through.
	if code := run([]string{"-max-tail", "50", oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 with -max-tail 50", code)
	}
}

func TestDiffFailsOnRejectRateJump(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", servingOld)
	// Reject rate +5pp against the default 2pp gate; tail unchanged.
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"ext-overload","wall_ms":100,"allocs":1000,
"serving":{"p99_ms":110,"p999_ms":300,"reject_pct":17}}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if code := run([]string{"-max-reject", "10", oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 with -max-reject 10", code)
	}
}

func TestDiffSkipsTailGateWhenBaselineLacksServing(t *testing.T) {
	dir := t.TempDir()
	// Old report predates the serving block: no tail gate, no failure.
	oldP := writeReport(t, dir, "old.json", `{"date":"2026-08-06","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"ext-overload","wall_ms":100,"allocs":1000}]}`)
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"ext-overload","wall_ms":100,"allocs":1000,
"serving":{"p99_ms":9999,"p999_ms":9999,"reject_pct":99}}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (no baseline serving block); stderr: %s", code, errb.String())
	}
}

func TestDiffReportsMissingFigures(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json", oldReport)
	newP := writeReport(t, dir, "new.json", `{"date":"2026-08-08","scale":0.05,"seed":1,"parallel":0,
"figures":[{"id":"fig12a","wall_ms":100,"allocs":1000},{"id":"fig16","wall_ms":10,"allocs":10}]}`)
	var out, errb bytes.Buffer
	if code := run([]string{oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0 (missing figures are informational)", code)
	}
	got := out.String()
	if !strings.Contains(got, "missing from new report") || !strings.Contains(got, "no baseline") {
		t.Fatalf("missing-figure lines absent:\n%s", got)
	}
}
