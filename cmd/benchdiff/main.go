// Command benchdiff compares two BENCH_*.json reports produced by
// lightvm-bench -json and fails (exit 1) when any figure regressed
// beyond the allowed thresholds. It is the regression gate between a
// checked-in baseline report and a fresh run:
//
//	benchdiff -max-wall 60 -max-alloc 10 BENCH_old.json BENCH_new.json
//
// Wall-clock numbers jitter with machine load (CI runners especially),
// so the default wall threshold is deliberately generous, and figures
// whose wall time is below -min-wall-ms on both sides are exempt from
// the wall gate entirely — a 1ms figure can double from scheduler
// noise alone. Allocation counts are deterministic on sequential runs
// and get a tight threshold with no floor.
// Exit codes: 0 comparison passed, 1 regression found, 2 usage or
// input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

type figure struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	Allocs uint64  `json:"allocs"`
}

type report struct {
	Date     string   `json:"date"`
	Scale    float64  `json:"scale"`
	Seed     uint64   `json:"seed"`
	Parallel int      `json:"parallel"`
	Shards   int      `json:"shards,omitempty"`
	Figures  []figure `json:"figures"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Figures) == 0 {
		return nil, fmt.Errorf("%s: no figures", path)
	}
	return &r, nil
}

// pct is the relative change from old to new in percent; +10 means new
// is 10% worse (bigger).
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

type diffLine struct {
	id        string
	wallPct   float64
	allocPct  float64
	wallBad   bool
	allocBad  bool
	onlyInOld bool
	onlyInNew bool
}

// diff compares the two reports figure by figure against the given
// regression thresholds (percent). Figures under minWallMS on both
// sides never trip the wall gate: relative noise dominates absolute
// signal down there.
func diff(oldR, newR *report, maxWallPct, maxAllocPct, minWallMS float64) (lines []diffLine, regressed bool) {
	newByID := make(map[string]figure, len(newR.Figures))
	for _, f := range newR.Figures {
		newByID[f.ID] = f
	}
	seen := make(map[string]bool, len(oldR.Figures))
	for _, of := range oldR.Figures {
		seen[of.ID] = true
		nf, ok := newByID[of.ID]
		if !ok {
			lines = append(lines, diffLine{id: of.ID, onlyInOld: true})
			continue
		}
		l := diffLine{
			id:       of.ID,
			wallPct:  pct(of.WallMS, nf.WallMS),
			allocPct: pct(float64(of.Allocs), float64(nf.Allocs)),
		}
		l.wallBad = l.wallPct > maxWallPct && (of.WallMS >= minWallMS || nf.WallMS >= minWallMS)
		l.allocBad = l.allocPct > maxAllocPct
		if l.wallBad || l.allocBad {
			regressed = true
		}
		lines = append(lines, l)
	}
	for _, nf := range newR.Figures {
		if !seen[nf.ID] {
			lines = append(lines, diffLine{id: nf.ID, onlyInNew: true})
		}
	}
	return lines, regressed
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxWall := fs.Float64("max-wall", 60, "max allowed wall_ms regression per figure, percent")
	maxAlloc := fs.Float64("max-alloc", 10, "max allowed allocs regression per figure, percent")
	minWall := fs.Float64("min-wall-ms", 5, "figures faster than this on both sides skip the wall gate")
	force := fs.Bool("force", false, "compare even when scale/seed/parallel differ")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		return 2
	}
	oldR, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newR, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if oldR.Scale != newR.Scale || oldR.Seed != newR.Seed || oldR.Parallel != newR.Parallel || oldR.Shards != newR.Shards {
		msg := fmt.Sprintf("benchdiff: reports not comparable: old scale=%g seed=%d parallel=%d shards=%d, new scale=%g seed=%d parallel=%d shards=%d",
			oldR.Scale, oldR.Seed, oldR.Parallel, oldR.Shards, newR.Scale, newR.Seed, newR.Parallel, newR.Shards)
		if !*force {
			fmt.Fprintln(stderr, msg, "(use -force to override)")
			return 2
		}
		fmt.Fprintln(stderr, msg, "(continuing under -force)")
	}

	lines, regressed := diff(oldR, newR, *maxWall, *maxAlloc, *minWall)
	fmt.Fprintf(stdout, "%-12s %12s %12s\n", "figure", "wall", "allocs")
	for _, l := range lines {
		switch {
		case l.onlyInOld:
			fmt.Fprintf(stdout, "%-12s %25s\n", l.id, "missing from new report")
		case l.onlyInNew:
			fmt.Fprintf(stdout, "%-12s %25s\n", l.id, "new figure (no baseline)")
		default:
			mark := func(bad bool) string {
				if bad {
					return " REGRESSED"
				}
				return ""
			}
			fmt.Fprintf(stdout, "%-12s %+11.1f%%%s %+11.1f%%%s\n",
				l.id, l.wallPct, mark(l.wallBad), l.allocPct, mark(l.allocBad))
		}
	}
	if regressed {
		fmt.Fprintf(stderr, "benchdiff: regression beyond -max-wall %g%% / -max-alloc %g%%\n", *maxWall, *maxAlloc)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
