// Command benchdiff compares two BENCH_*.json reports produced by
// lightvm-bench -json and fails (exit 1) when any figure regressed
// beyond the allowed thresholds. It is the regression gate between a
// checked-in baseline report and a fresh run:
//
//	benchdiff -max-wall 60 -max-alloc 10 BENCH_old.json BENCH_new.json
//
// Wall-clock numbers jitter with machine load (CI runners especially),
// so the default wall threshold is deliberately generous, and figures
// whose wall time is below -min-wall-ms on both sides are exempt from
// the wall gate entirely — a 1ms figure can double from scheduler
// noise alone. Allocation counts are deterministic on sequential runs
// and get a tight threshold with no floor.
// Exit codes: 0 comparison passed, 1 regression found, 2 usage or
// input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

type figure struct {
	ID      string   `json:"id"`
	WallMS  float64  `json:"wall_ms"`
	Allocs  uint64   `json:"allocs"`
	Serving *serving `json:"serving,omitempty"`
}

// serving is the tail block lightvm-bench attaches to traffic figures
// (ext-serve, ext-overload). Unlike wall time these numbers are
// deterministic at fixed scale/seed, so the gate catches any model
// change that moves the serving tail or the rejection rate.
type serving struct {
	P99MS     float64 `json:"p99_ms"`
	P999MS    float64 `json:"p999_ms"`
	RejectPct float64 `json:"reject_pct"`
}

type report struct {
	Date     string   `json:"date"`
	Scale    float64  `json:"scale"`
	Seed     uint64   `json:"seed"`
	Parallel int      `json:"parallel"`
	Shards   int      `json:"shards,omitempty"`
	Figures  []figure `json:"figures"`
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Figures) == 0 {
		return nil, fmt.Errorf("%s: no figures", path)
	}
	return &r, nil
}

// pct is the relative change from old to new in percent; +10 means new
// is 10% worse (bigger).
func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

type diffLine struct {
	id        string
	wallPct   float64
	allocPct  float64
	wallBad   bool
	allocBad  bool
	onlyInOld bool
	onlyInNew bool

	// Serving-tail gate (only set when both reports carry a serving
	// block for the figure).
	hasTail    bool
	p99Pct     float64
	p999Pct    float64
	rejectDiff float64 // percentage-point change in reject rate
	tailBad    bool
}

// gates bundles the regression thresholds.
type gates struct {
	maxWallPct   float64
	maxAllocPct  float64
	minWallMS    float64
	maxTailPct   float64 // p99/p999 relative regression, percent
	maxRejectPts float64 // reject-rate increase, percentage points
}

// diff compares the two reports figure by figure against the given
// regression thresholds (percent). Figures under minWallMS on both
// sides never trip the wall gate: relative noise dominates absolute
// signal down there. Figures carrying a serving block in both reports
// additionally gate the latency tail (p99/p999) and the reject rate —
// those are deterministic at fixed scale/seed, so any movement is a
// model change, not noise.
func diff(oldR, newR *report, g gates) (lines []diffLine, regressed bool) {
	newByID := make(map[string]figure, len(newR.Figures))
	for _, f := range newR.Figures {
		newByID[f.ID] = f
	}
	seen := make(map[string]bool, len(oldR.Figures))
	for _, of := range oldR.Figures {
		seen[of.ID] = true
		nf, ok := newByID[of.ID]
		if !ok {
			lines = append(lines, diffLine{id: of.ID, onlyInOld: true})
			continue
		}
		l := diffLine{
			id:       of.ID,
			wallPct:  pct(of.WallMS, nf.WallMS),
			allocPct: pct(float64(of.Allocs), float64(nf.Allocs)),
		}
		l.wallBad = l.wallPct > g.maxWallPct && (of.WallMS >= g.minWallMS || nf.WallMS >= g.minWallMS)
		l.allocBad = l.allocPct > g.maxAllocPct
		if of.Serving != nil && nf.Serving != nil {
			l.hasTail = true
			l.p99Pct = pct(of.Serving.P99MS, nf.Serving.P99MS)
			l.p999Pct = pct(of.Serving.P999MS, nf.Serving.P999MS)
			l.rejectDiff = nf.Serving.RejectPct - of.Serving.RejectPct
			l.tailBad = l.p99Pct > g.maxTailPct || l.p999Pct > g.maxTailPct ||
				l.rejectDiff > g.maxRejectPts
		}
		if l.wallBad || l.allocBad || l.tailBad {
			regressed = true
		}
		lines = append(lines, l)
	}
	for _, nf := range newR.Figures {
		if !seen[nf.ID] {
			lines = append(lines, diffLine{id: nf.ID, onlyInNew: true})
		}
	}
	return lines, regressed
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	maxWall := fs.Float64("max-wall", 60, "max allowed wall_ms regression per figure, percent")
	maxAlloc := fs.Float64("max-alloc", 10, "max allowed allocs regression per figure, percent")
	minWall := fs.Float64("min-wall-ms", 5, "figures faster than this on both sides skip the wall gate")
	maxTail := fs.Float64("max-tail", 15, "max allowed p99/p999 regression on serving figures, percent")
	maxReject := fs.Float64("max-reject", 2, "max allowed reject-rate increase on serving figures, percentage points")
	force := fs.Bool("force", false, "compare even when scale/seed/parallel differ")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		return 2
	}
	oldR, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newR, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	if oldR.Scale != newR.Scale || oldR.Seed != newR.Seed || oldR.Parallel != newR.Parallel || oldR.Shards != newR.Shards {
		msg := fmt.Sprintf("benchdiff: reports not comparable: old scale=%g seed=%d parallel=%d shards=%d, new scale=%g seed=%d parallel=%d shards=%d",
			oldR.Scale, oldR.Seed, oldR.Parallel, oldR.Shards, newR.Scale, newR.Seed, newR.Parallel, newR.Shards)
		if !*force {
			fmt.Fprintln(stderr, msg, "(use -force to override)")
			return 2
		}
		fmt.Fprintln(stderr, msg, "(continuing under -force)")
	}

	lines, regressed := diff(oldR, newR, gates{
		maxWallPct: *maxWall, maxAllocPct: *maxAlloc, minWallMS: *minWall,
		maxTailPct: *maxTail, maxRejectPts: *maxReject,
	})
	fmt.Fprintf(stdout, "%-12s %12s %12s %12s\n", "figure", "wall", "allocs", "tail")
	for _, l := range lines {
		switch {
		case l.onlyInOld:
			fmt.Fprintf(stdout, "%-12s %25s\n", l.id, "missing from new report")
		case l.onlyInNew:
			fmt.Fprintf(stdout, "%-12s %25s\n", l.id, "new figure (no baseline)")
		default:
			mark := func(bad bool) string {
				if bad {
					return " REGRESSED"
				}
				return ""
			}
			tail := ""
			if l.hasTail {
				tail = fmt.Sprintf(" p99 %+.1f%% p999 %+.1f%% reject %+.2fpp%s",
					l.p99Pct, l.p999Pct, l.rejectDiff, mark(l.tailBad))
			}
			fmt.Fprintf(stdout, "%-12s %+11.1f%%%s %+11.1f%%%s%s\n",
				l.id, l.wallPct, mark(l.wallBad), l.allocPct, mark(l.allocBad), tail)
		}
	}
	if regressed {
		fmt.Fprintf(stderr, "benchdiff: regression beyond -max-wall %g%% / -max-alloc %g%% / -max-tail %g%% / -max-reject %gpp\n",
			*maxWall, *maxAlloc, *maxTail, *maxReject)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
