// Command chaos is the LightVM toolstack CLI on a simulated host —
// the counterpart of the paper's chaos command. It runs a batch of
// operations against a fresh machine and reports virtual-time costs.
//
// Usage:
//
//	chaos -op create -image daytime -mode lightvm -n 100
//	chaos -op checkpoint -image daytime -mode noxs
//	chaos -op migrate -image clickos-fw -mode noxs
//	chaos -op images
//	chaos -op modes
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lightvm"
)

var modeNames = map[string]lightvm.Mode{
	"xl":      lightvm.ModeXL,
	"xs":      lightvm.ModeChaosXS,
	"split":   lightvm.ModeChaosSplit,
	"noxs":    lightvm.ModeChaosNoXS,
	"lightvm": lightvm.ModeLightVM,
}

func main() {
	op := flag.String("op", "create", "operation: create | checkpoint | migrate | stats | console | images | modes")
	imageName := flag.String("image", "daytime", "guest image name (see -op images)")
	modeName := flag.String("mode", "lightvm", "toolstack: xl | xs | split | noxs | lightvm")
	n := flag.Int("n", 10, "number of guests for -op create")
	seed := flag.Uint64("seed", 1, "simulation seed")
	traceOps := flag.Bool("trace", false, "print the control-plane operation trace")
	cfgPath := flag.String("config", "", "guest config file (xl or chaos format); overrides -image")
	flag.Parse()

	if err := run(*op, *imageName, *modeName, *n, *seed, *traceOps, *cfgPath); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run(op, imageName, modeName string, n int, seed uint64, traceOps bool, cfgPath string) error {
	var traceLog *lightvm.TraceLog
	attach := func(h *lightvm.Host) {
		if traceOps {
			traceLog = h.EnableTrace(0)
		}
	}
	defer func() {
		if traceLog != nil {
			fmt.Print(traceLog.String())
		}
	}()
	switch op {
	case "images":
		fmt.Println("available guest images:")
		for _, name := range []string{"noop", "daytime", "minipython", "clickos-fw", "tls-unikernel", "tinyx", "tinyx-micropython", "tinyx-tls", "debian", "debian-micropython"} {
			im, err := lightvm.ImageByName(name)
			if err != nil {
				return err
			}
			fmt.Printf("  %-20s %8.2f MB image  %7.1f MB RAM\n",
				im.Name, float64(im.TotalSize())/(1<<20), float64(im.MemBytes)/(1<<20))
		}
		return nil
	case "modes":
		fmt.Println("toolstack modes:")
		for k, m := range modeNames {
			fmt.Printf("  %-8s → %s\n", k, m)
		}
		return nil
	}

	mode, ok := modeNames[modeName]
	if !ok {
		return fmt.Errorf("unknown mode %q (try -op modes)", modeName)
	}
	img, err := lightvm.ImageByName(imageName)
	if err != nil {
		return err
	}
	if cfgPath != "" {
		text, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		cfg, err := lightvm.ParseVMConfig(string(text))
		if err != nil {
			return err
		}
		img, err = cfg.ResolveImage()
		if err != nil {
			return err
		}
		fmt.Printf("using config %s: image=%s memory=%dMB vifs=%d\n",
			cfgPath, img.Name, img.MemBytes>>20, len(img.Devices))
	}

	switch op {
	case "create":
		host, err := lightvm.NewHost(lightvm.Xeon4, seed)
		if err != nil {
			return err
		}
		attach(host)
		if err := host.EnsureFlavor(img, mode); err != nil {
			return err
		}
		var first, last time.Duration
		for i := 0; i < n; i++ {
			if err := host.Replenish(); err != nil {
				return err
			}
			vm, err := host.CreateVM(mode, fmt.Sprintf("%s-%d", img.Name, i), img)
			if err != nil {
				return err
			}
			total := vm.CreateTime + vm.BootTime
			if i == 0 {
				first = total
			}
			last = total
		}
		fmt.Printf("created %d × %s with %s\n", n, img.Name, mode)
		fmt.Printf("  first create+boot: %v\n", first)
		fmt.Printf("  last  create+boot: %v\n", last)
		fmt.Printf("  host memory used:  %.1f MB\n", float64(host.MemoryUsedBytes())/(1<<20))
		fmt.Printf("  cpu utilization:   %.2f%%\n", host.CPUUtilization()*100)
		return nil

	case "checkpoint":
		host, err := lightvm.NewHost(lightvm.Xeon4Ckpt, seed)
		if err != nil {
			return err
		}
		attach(host)
		vm, err := host.CreateVM(mode, "ckpt", img)
		if err != nil {
			return err
		}
		cp, saveT, err := host.Save(vm)
		if err != nil {
			return err
		}
		_, restT, err := host.Restore(cp)
		if err != nil {
			return err
		}
		fmt.Printf("checkpointed %s with %s\n", img.Name, mode)
		fmt.Printf("  save:    %v\n", saveT)
		fmt.Printf("  restore: %v\n", restT)
		return nil

	case "stats":
		// xentop-style snapshot: boot a small mixed fleet and list it.
		host, err := lightvm.NewHost(lightvm.Xeon4, seed)
		if err != nil {
			return err
		}
		attach(host)
		if err := host.EnsureFlavor(img, mode); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := host.Replenish(); err != nil {
				return err
			}
			if _, err := host.CreateVM(mode, fmt.Sprintf("%s-%d", img.Name, i), img); err != nil {
				return err
			}
		}
		fmt.Printf("%-16s %-10s %-9s %10s %8s %7s\n", "NAME", "STATE", "MODE", "MEM(MB)", "CPU(%)", "CORE")
		for _, vm := range host.Env.AllVMs() {
			state := "running"
			if !vm.Booted {
				state = "paused"
			}
			fmt.Printf("%-16s %-10s %-9s %10.1f %8.3f %7d\n",
				vm.Name, state, vm.Mode, float64(vm.Dom.MemBytes)/(1<<20),
				vm.Image.UtilDuty*100, vm.Core)
		}
		fmt.Printf("\nhost: %d VMs, %.1f MB used, %.2f%% CPU\n",
			host.VMs(), float64(host.MemoryUsedBytes())/(1<<20), host.CPUUtilization()*100)
		return nil

	case "console":
		host, err := lightvm.NewHost(lightvm.Xeon4, seed)
		if err != nil {
			return err
		}
		attach(host)
		if err := host.EnsureFlavor(img, mode); err != nil {
			return err
		}
		vm, err := host.CreateVM(mode, img.Name+"-0", img)
		if err != nil {
			return err
		}
		out, err := host.Env.Console.Read(vm.Dom.ID)
		if err != nil {
			return err
		}
		fmt.Printf("console of %s (domid %d):\n%s", vm.Name, vm.Dom.ID, out)
		return nil

	case "migrate":
		clock := lightvm.NewClock()
		src, err := lightvm.NewHostOn(clock, lightvm.Xeon4Ckpt, seed)
		if err != nil {
			return err
		}
		attach(src)
		dst, err := lightvm.NewHostOn(clock, lightvm.Xeon4Ckpt, seed+1)
		if err != nil {
			return err
		}
		vm, err := src.CreateVM(mode, "mig", img)
		if err != nil {
			return err
		}
		_, d, err := src.MigrateTo(dst, vm)
		if err != nil {
			return err
		}
		fmt.Printf("migrated %s with %s in %v\n", img.Name, mode, d)
		return nil
	}
	return fmt.Errorf("unknown op %q", op)
}
